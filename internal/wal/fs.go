// Package wal is tbtmd's write-ahead log: length-prefixed CRC32C
// records appended to segment files by a group-commit batcher, plus
// point-in-time checkpoints so recovery replays only the WAL written
// after the last checkpoint. The package is deliberately independent of
// the STM engine — callers feed it (commit tick, key/value ops) tuples
// and decide what "acknowledged" means by choosing a durability Mode.
//
// All file access goes through the FS interface so tests can run the
// log against an in-memory filesystem with crash semantics (MemFS) and
// wrap any FS with fault injection (InjectFS).
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the write handle the log needs from a filesystem: buffered
// appends, a durability barrier, and close.
type File interface {
	io.Writer
	// Sync makes previously written data durable. A short write or a
	// Sync error wedges the log (see Log), so implementations must not
	// return transient errors lightly.
	Sync() error
	Close() error
}

// FS is the filesystem surface the log uses. Paths are passed through
// verbatim; implementations decide how to root them.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(dir string) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// durable.
	SyncDir(dir string) error
	// Truncate cuts name to size bytes (recovery uses it to drop a torn
	// tail).
	Truncate(name string, size int64) error
}

// OsFS is the real filesystem.
type OsFS struct{}

type osFile struct{ *os.File }

func (OsFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OsFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OsFS) Remove(name string) error             { return os.Remove(name) }
func (OsFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OsFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
