package tbtm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Facade wiring for the scalable commit-path options: striped commit
// counters (WithStripedClock), pluggable time bases (WithTimeBase) and
// S-STM commit lock striping (WithCommitStripes).

func TestStripedClockOptionValidation(t *testing.T) {
	for _, c := range []Consistency{Linearizable, SingleVersion, ZLinearizable, SnapshotIsolation} {
		if _, err := New(WithConsistency(c), WithStripedClock(8)); err != nil {
			t.Fatalf("%v: striped clock rejected: %v", c, err)
		}
	}
	for _, c := range []Consistency{CausallySerializable, Serializable} {
		if _, err := New(WithConsistency(c), WithStripedClock(8)); err == nil {
			t.Fatalf("%v: striped clock accepted on a vector time base", c)
		}
	}
	if _, err := New(WithConsistency(Linearizable), WithStripedClock(8), WithSharedCommitTimes()); err == nil {
		t.Fatal("striped clock + shared commit times accepted")
	}
	if _, err := New(WithConsistency(Linearizable), WithStripedClock(8),
		WithSimRealTimeClock(4, 2, 0)); err == nil {
		t.Fatal("striped clock + real-time clock accepted")
	}
}

func TestCommitStripesOptionValidation(t *testing.T) {
	if _, err := New(WithConsistency(Serializable), WithCommitStripes(8)); err != nil {
		t.Fatalf("commit stripes rejected on Serializable: %v", err)
	}
	if _, err := New(WithConsistency(Linearizable), WithCommitStripes(8)); err == nil {
		t.Fatal("commit stripes accepted on Linearizable")
	}
	if _, err := New(WithConsistency(Serializable), WithCommitStripes(-1)); err == nil {
		t.Fatal("negative commit stripes accepted")
	}
	if _, err := New(WithConsistency(Serializable), WithCommitStripes(0)); err == nil {
		t.Fatal("explicit zero commit stripes accepted")
	}
	if _, err := New(WithConsistency(Linearizable), WithCommitStripes(0)); err == nil {
		t.Fatal("explicit zero commit stripes accepted on Linearizable")
	}
}

// TestStripedClockConservation runs concurrent transfers on a striped
// time base: commit times come from per-thread congruence classes, and
// the money conservation invariant must survive.
func TestStripedClockConservation(t *testing.T) {
	for _, c := range []Consistency{Linearizable, SingleVersion, ZLinearizable, SnapshotIsolation} {
		const (
			workers   = 4
			transfers = 150
			accounts  = 8
			initial   = int64(100)
		)
		tm := MustNew(WithConsistency(c), WithStripedClock(workers))
		vars := make([]*Var[int64], accounts)
		for i := range vars {
			vars[i] = NewVar(tm, initial)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			th := tm.NewThread()
			seed := uint64(w + 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < transfers; i++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					a := int((seed >> 33) % accounts)
					b := (a + 1 + int((seed>>13)%(accounts-1))) % accounts
					if err := th.Atomic(Short, func(tx Tx) error {
						va, err := vars[a].Read(tx)
						if err != nil {
							return err
						}
						vb, err := vars[b].Read(tx)
						if err != nil {
							return err
						}
						if err := vars[a].Write(tx, va-1); err != nil {
							return err
						}
						return vars[b].Write(tx, vb+1)
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		th := tm.NewThread()
		var sum int64
		if err := th.AtomicReadOnly(Short, func(tx Tx) error {
			sum = 0
			for _, v := range vars {
				x, err := v.Read(tx)
				if err != nil {
					return err
				}
				sum += x
			}
			return nil
		}); err != nil {
			t.Fatalf("%v: audit: %v", c, err)
		}
		if sum != initial*accounts {
			t.Fatalf("%v: total = %d, want %d", c, sum, initial*accounts)
		}
	}
}

// countingTimeBase wraps the default shared counter to verify
// WithTimeBase is actually threaded through to the backend.
type countingTimeBase struct {
	c       atomic.Uint64
	commits atomic.Int64
}

func (t *countingTimeBase) Now(int) uint64 { return t.c.Load() }
func (t *countingTimeBase) CommitTime(int) uint64 {
	t.commits.Add(1)
	return t.c.Add(1)
}

func TestWithTimeBaseInjected(t *testing.T) {
	tb := &countingTimeBase{}
	tm := MustNew(WithConsistency(Linearizable), WithTimeBase(tb))
	v := NewVar(tm, int64(0))
	th := tm.NewThread()
	for i := 0; i < 5; i++ {
		if err := th.Atomic(Short, func(tx Tx) error {
			return v.Modify(tx, func(x int64) int64 { return x + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := tb.commits.Load(); n != 5 {
		t.Fatalf("custom time base saw %d commit-time acquisitions, want 5", n)
	}
	if _, err := New(WithConsistency(Serializable), WithTimeBase(tb)); err == nil {
		t.Fatal("custom time base accepted on a vector-clock backend")
	}
	if _, err := New(WithConsistency(Linearizable), WithTimeBase(tb), WithStripedClock(4)); err == nil {
		t.Fatal("custom time base + striped clock accepted")
	}
}

// TestSerializableStripedFacade exercises the Serializable backend's
// striped commit through the facade under concurrency, including the
// serialized baseline.
func TestSerializableStripedFacade(t *testing.T) {
	for _, stripes := range []int{1, 64} {
		tm := MustNew(WithConsistency(Serializable), WithThreads(4), WithCommitStripes(stripes))
		const accounts = 8
		const initial = int64(50)
		vars := make([]*Var[int64], accounts)
		for i := range vars {
			vars[i] = NewVar(tm, initial)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			th := tm.NewThread()
			a, b := w%accounts, (w+3)%accounts
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if err := th.Atomic(Short, func(tx Tx) error {
						va, err := vars[a].Read(tx)
						if err != nil {
							return err
						}
						vb, err := vars[b].Read(tx)
						if err != nil {
							return err
						}
						if err := vars[a].Write(tx, va-1); err != nil {
							return err
						}
						return vars[b].Write(tx, vb+1)
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		th := tm.NewThread()
		var sum int64
		if err := th.AtomicReadOnly(Short, func(tx Tx) error {
			sum = 0
			for _, v := range vars {
				x, err := v.Read(tx)
				if err != nil {
					return err
				}
				sum += x
			}
			return nil
		}); err != nil {
			t.Fatalf("stripes=%d: audit: %v", stripes, err)
		}
		if sum != initial*accounts {
			t.Fatalf("stripes=%d: total = %d, want %d", stripes, sum, initial*accounts)
		}
	}
}
