// Package server exposes a tbtm instance over TCP: tbtmd, a
// transactional key-value server. The package provides the wire
// protocol, the request executor that leases engine Threads to
// connections, the server itself, a matching client, and a closed-loop
// load generator.
//
// # Wire protocol
//
// Every request and every response is one frame: a 4-byte big-endian
// payload length followed by the payload. A request payload is a
// client-assigned uvarint sequence ID, an opcode byte, and
// opcode-specific fields; byte strings are encoded as a uvarint length
// followed by the bytes. A response payload echoes the request's
// sequence ID, then a status byte and status/opcode-specific fields.
// One request gets exactly one response.
//
// The protocol is pipelined: a client may have any number of requests
// outstanding on one connection. The server decodes requests greedily
// from each readable burst and answers non-blocking operations in
// request order, so a client that never uses blocking opcodes may rely
// on ordering alone. Blocking opcodes (BTAKE, WAIT) may take
// arbitrarily long: the server parks the transaction on its read
// footprint (tbtm.Retry) and replies when a remote commit changes the
// watched keys — or with StatusClosed when the server shuts down.
// Their responses are written whenever they complete, possibly AFTER
// the responses to later requests on the same connection; the echoed
// sequence ID is what matches them back. Later non-blocking requests
// on the same connection keep flowing while a blocking one is parked.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a protocol opcode.
type Op byte

// Protocol opcodes. OpGet..OpCas are also valid sub-opcodes inside an
// OpMulti script.
const (
	// OpPing answers StatusOK with no payload.
	OpPing Op = iota + 1
	// OpGet reads one key: key. Response: value, or StatusNotFound.
	OpGet
	// OpSet writes one key: key, value. Response: StatusOK.
	OpSet
	// OpDel deletes one key: key. Response: one byte, 1 if the key
	// existed.
	OpDel
	// OpCas compares-and-swaps one key: key, expect-present byte,
	// expected value, new value. The swap succeeds when the key's
	// presence matches expect-present and (if present) its value equals
	// the expected bytes; on success the key is set to the new value.
	// With expect-present = 0 it is create-if-absent. Response: one
	// byte, 1 if swapped.
	OpCas
	// OpRange scans keys in ascending order: from, to, uvarint limit.
	// The scan covers from <= key < to; an empty to means unbounded
	// above; limit 0 means unlimited. Response: uvarint count, then
	// count x (key, value) — one consistent snapshot.
	OpRange
	// OpMulti executes a script as ONE atomic transaction: uvarint
	// count, then count sub-requests (OpGet/OpSet/OpDel/OpCas, encoded
	// exactly like the top-level forms, opcode byte included). A failed
	// OpCas aborts the whole script: nothing commits. Response: one
	// committed byte, uvarint result count, then per-sub-op responses
	// (status byte + payload as for the top-level op); when committed =
	// 0 the results end at the sub-op that failed.
	OpMulti
	// OpBTake blocks until the key exists, then deletes it and returns
	// its value: key. Response: value, or StatusClosed on shutdown.
	OpBTake
	// OpWait blocks until the key's state differs from the given one:
	// key, old-present byte, old value. Response: present byte + value,
	// or StatusClosed on shutdown.
	OpWait
	// OpStats answers a JSON StatsReply (engine + executor counters).
	OpStats

	opMax
)

// String names the opcode for metrics and errors.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	case OpCas:
		return "cas"
	case OpRange:
		return "range"
	case OpMulti:
		return "multi"
	case OpBTake:
		return "btake"
	case OpWait:
		return "wait"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status is the first byte of every response payload.
type Status byte

// Response statuses.
const (
	// StatusOK carries the opcode's success payload.
	StatusOK Status = iota
	// StatusNotFound reports a missing key (OpGet).
	StatusNotFound
	// StatusError carries an error string; the connection stays usable.
	StatusError
	// StatusClosed reports that the server is shutting down; blocked
	// operations answer it when woken by shutdown.
	StatusClosed
	// StatusReadOnly reports an update refused (or an acknowledgement
	// withheld) because the server degraded to read-only after a
	// write-ahead-log I/O failure; reads keep succeeding.
	StatusReadOnly
)

// DefaultMaxFrame bounds the payload size both sides will read.
const DefaultMaxFrame = 1 << 20

// Framing and parse errors.
var (
	// ErrFrameTooLarge reports a frame above the size limit.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
	// errTruncated reports a payload shorter than its opcode requires.
	errTruncated = errors.New("server: truncated request payload")
)

// writeFrame writes one length-prefixed frame. hdr is scratch space for
// the length prefix (to keep the hot path allocation-free).
func writeFrame(w io.Writer, hdr *[4]byte, payload []byte) error {
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload slice, which is valid until the next call.
func readFrame(r io.Reader, hdr *[4]byte, buf []byte, maxFrame int) ([]byte, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// appendBytes appends a uvarint-length-prefixed byte string.
//
//tbtm:noalloc
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// appendString is appendBytes for string payloads without conversion.
//
//tbtm:noalloc
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// takeBytes consumes one uvarint-length-prefixed byte string from p,
// returning the string (aliasing p) and the rest.
func takeBytes(p []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < n {
		return nil, p, errTruncated
	}
	return p[sz : sz+int(n)], p[sz+int(n):], nil
}

// takeUvarint consumes one uvarint from p.
//
//tbtm:noalloc
func takeUvarint(p []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, p, errTruncated
	}
	return n, p[sz:], nil
}

// takeByte consumes one byte from p.
func takeByte(p []byte) (byte, []byte, error) {
	if len(p) < 1 {
		return 0, p, errTruncated
	}
	return p[0], p[1:], nil
}

// subReq is one decoded operation: either a top-level single-key request
// or one entry of an OpMulti script. All byte slices alias the frame
// buffer and are valid only until the next frame is read.
type subReq struct {
	op            Op
	key           []byte
	val           []byte
	expect        []byte
	expectPresent bool
}

// request is a decoded request frame, reused across requests on a
// connection.
type request struct {
	op Op

	// Single-key ops and OpWait reuse the subReq fields.
	subReq

	// OpRange.
	from, to []byte
	limit    int

	// OpMulti.
	multi []subReq
}

// parseSingle decodes the fields of one single-key operation (after the
// opcode byte) into sub.
func parseSingle(op Op, p []byte, sub *subReq) ([]byte, error) {
	var err error
	sub.op = op
	sub.val, sub.expect = nil, nil
	sub.expectPresent = false
	if sub.key, p, err = takeBytes(p); err != nil {
		return p, err
	}
	switch op {
	case OpGet, OpDel, OpBTake:
	case OpSet:
		if sub.val, p, err = takeBytes(p); err != nil {
			return p, err
		}
	case OpCas:
		var flag byte
		if flag, p, err = takeByte(p); err != nil {
			return p, err
		}
		sub.expectPresent = flag != 0
		if sub.expect, p, err = takeBytes(p); err != nil {
			return p, err
		}
		if sub.val, p, err = takeBytes(p); err != nil {
			return p, err
		}
	default:
		return p, fmt.Errorf("server: opcode %s not valid here", op)
	}
	return p, nil
}

// parseRequest decodes payload into req, reusing req's buffers. The
// decoded request aliases payload.
func parseRequest(payload []byte, req *request) error {
	op, p, err := takeByte(payload)
	if err != nil {
		return err
	}
	req.op = Op(op)
	switch req.op {
	case OpPing, OpStats:
		return nil
	case OpGet, OpSet, OpDel, OpCas, OpBTake:
		_, err = parseSingle(req.op, p, &req.subReq)
		return err
	case OpWait:
		req.subReq.op = OpWait
		req.val, req.expect = nil, nil
		if req.key, p, err = takeBytes(p); err != nil {
			return err
		}
		var flag byte
		if flag, p, err = takeByte(p); err != nil {
			return err
		}
		req.expectPresent = flag != 0
		req.expect, _, err = takeBytes(p)
		return err
	case OpRange:
		if req.from, p, err = takeBytes(p); err != nil {
			return err
		}
		if req.to, p, err = takeBytes(p); err != nil {
			return err
		}
		n, _, err := takeUvarint(p)
		if err != nil {
			return err
		}
		// Clamp: a wire limit beyond any plausible reply is "unlimited
		// up to the frame bound", never a negative int after conversion.
		if n > 1<<31-1 {
			n = 1<<31 - 1
		}
		req.limit = int(n)
		return nil
	case OpMulti:
		n, p, err := takeUvarint(p)
		if err != nil {
			return err
		}
		if n > uint64(len(payload)) { // each sub-op takes >= 1 byte
			return errTruncated
		}
		req.multi = req.multi[:0]
		for i := uint64(0); i < n; i++ {
			var op byte
			if op, p, err = takeByte(p); err != nil {
				return err
			}
			var sub subReq
			if p, err = parseSingle(Op(op), p, &sub); err != nil {
				return err
			}
			req.multi = append(req.multi, sub)
		}
		return nil
	default:
		return fmt.Errorf("server: unknown opcode %d", op)
	}
}
