package server

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// LoadConfig parameterises RunLoad, the closed-loop load generator
// behind cmd/tbtmload and cmd/benchjson's server/throughput series.
type LoadConfig struct {
	// Addr is the server to hammer.
	Addr string
	// Conns is the number of closed-loop client connections.
	Conns int
	// Duration is the measurement window.
	Duration time.Duration
	// Keys sizes the keyspace (default 1024).
	Keys int
	// ValueSize is the SET payload size in bytes (default 64).
	ValueSize int
	// ReadRatio splits the plain single-key traffic between GET and SET
	// and is honored exactly as given: 0 means write-only, 1 read-only.
	// Applies to the share left after MultiRatio and BlockingRatio.
	// (cmd/tbtmload's flag default is 0.8.)
	ReadRatio float64
	// MultiRatio is the fraction of operations that are MULTI scripts
	// of TxnSize sub-ops (half reads, half writes).
	MultiRatio float64
	// TxnSize is the MULTI script length (default 8).
	TxnSize int
	// BlockingRatio is the fraction of operations that are blocking
	// BTAKEs against a small token keyspace. When > 0 a dedicated
	// feeder connection SETs tokens round-robin so takers always wake.
	BlockingRatio float64
	// BlockKeys sizes the token keyspace (default 16).
	BlockKeys int
	// Skew selects the key distribution: 0 uniform, > 1 a Zipf
	// parameter s (typical 1.1).
	Skew float64
	// Seed seeds the per-connection generators (0 = 1).
	Seed int64
	// Pipeline is the number of requests each connection keeps
	// outstanding (<= 1 = classic synchronous round trips). With a
	// depth > 1 every worker drives a Pipe: enqueue a window, flush,
	// drain.
	Pipeline int
	// Batch flushes a pipelined window in ONE write (letting the server
	// batch the window under one lease); without it every enqueued
	// request is flushed immediately, which pipelines but rarely
	// batches. Ignored when Pipeline <= 1.
	Batch bool
	// DialTimeout bounds each connection attempt; Wait additionally
	// retries dialing until the server is up (for CI races between
	// server start and load start). Both default to 0 (no retry).
	DialTimeout time.Duration
	Wait        time.Duration
}

// LoadResult is the aggregate outcome of one RunLoad window.
type LoadResult struct {
	Ops      uint64        `json:"ops"`
	Errors   uint64        `json:"errors"`
	Gets     uint64        `json:"gets"`
	Sets     uint64        `json:"sets"`
	Multis   uint64        `json:"multis"`
	Blocking uint64        `json:"blocking"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	NsPerOp  float64       `json:"ns_per_op"`
	OpsPerS  float64       `json:"ops_per_sec"`
	// P50Us/P99Us are per-operation latency percentiles in microseconds,
	// measured enqueue-to-reply (so a batched pipelined request's queueing
	// time inside its window counts against it).
	P50Us float64 `json:"p50_us"`
	P99Us float64 `json:"p99_us"`
	// EngineCommits is the server-side commit delta over the window
	// (fetched via OpStats), the ground truth that operations really
	// committed transactions.
	EngineCommits uint64 `json:"engine_commits"`
	// Truncated reports that the window ended early on at least one
	// connection — the server closed or reset mid-run (e.g. it was
	// killed under a crash drill). The counters then cover only the
	// operations that completed, and EngineCommits may be zero if the
	// post-window stats fetch found the server gone. A truncated run is
	// a partial measurement, not a failure.
	Truncated bool `json:"truncated"`
}

// isAbortedConn classifies errors that mean "the connection (or the
// whole server) went away", as opposed to a protocol-level failure:
// these truncate a load window rather than failing it.
func isAbortedConn(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, ErrServerClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

func (cfg *LoadConfig) defaults() error {
	if cfg.Addr == "" {
		return errors.New("server: load config needs an address")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	if cfg.ReadRatio < 0 || cfg.ReadRatio > 1 {
		return fmt.Errorf("server: read ratio %v outside [0,1]", cfg.ReadRatio)
	}
	if cfg.MultiRatio < 0 || cfg.BlockingRatio < 0 || cfg.MultiRatio+cfg.BlockingRatio > 1 {
		return fmt.Errorf("server: multi ratio %v + blocking ratio %v outside [0,1]", cfg.MultiRatio, cfg.BlockingRatio)
	}
	if cfg.TxnSize <= 0 {
		cfg.TxnSize = 8
	}
	if cfg.BlockKeys <= 0 {
		cfg.BlockKeys = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Pipeline < 1 {
		cfg.Pipeline = 1
	}
	return nil
}

// dial connects honoring Wait/DialTimeout.
func (cfg *LoadConfig) dial() (*Client, error) {
	deadline := time.Now().Add(cfg.Wait)
	for {
		cl, err := DialTimeout(cfg.Addr, cfg.DialTimeout)
		if err == nil {
			return cl, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// latHist is a log-linear latency histogram: histSub sub-buckets per
// power-of-two octave of microseconds, giving <= 25% quantile error
// with a few hundred fixed buckets and no recording allocation.
const (
	histSub     = 4
	histBuckets = 256
)

type latHist struct {
	buckets [histBuckets]uint64
	count   uint64
}

func latBucket(us uint64) int {
	if us < histSub {
		return int(us)
	}
	o := bits.Len64(us) - 1 // top bit position, >= 2
	sub := us >> uint(o-2)  // in [histSub, 2*histSub)
	b := (o-2)*histSub + int(sub)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func (h *latHist) record(d time.Duration) {
	h.buckets[latBucket(uint64(d.Microseconds()))]++
	h.count++
}

func (h *latHist) merge(o *latHist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
}

// quantile returns the q-quantile in microseconds (bucket midpoint).
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			if i < histSub {
				return float64(i)
			}
			o := i/histSub + 1
			sub := uint64(i - (o-2)*histSub)
			lower := sub << uint(o-2)
			return float64(lower) + float64(uint64(1)<<uint(o-2))/2
		}
	}
	return 0
}

// loadWorker is one closed-loop connection's state.
type loadWorker struct {
	cl   *Client
	rng  *rand.Rand
	zipf *rand.Zipf
	hist latHist

	ops, errs, gets, sets, multis, blocking uint64
	truncated                               bool
}

// RunLoad drives cfg.Conns closed-loop connections against cfg.Addr for
// cfg.Duration and reports aggregate throughput plus the server-side
// commit delta. Connection errors after the deadline (the coordinator
// closes lingering blocked connections) are not counted as errors.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if err := cfg.defaults(); err != nil {
		return LoadResult{}, err
	}

	// One extra control connection: pre-window stats, post-window stats,
	// and seeding.
	ctl, err := cfg.dial()
	if err != nil {
		return LoadResult{}, err
	}
	defer ctl.Close()
	// Seed the keyspace so GETs hit and the skiplist index has shape.
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	seedOps := make([]MultiOp, 0, 64)
	for i := 0; i < cfg.Keys; {
		seedOps = seedOps[:0]
		for ; i < cfg.Keys && len(seedOps) < 64; i++ {
			seedOps = append(seedOps, MSet(loadKey(i), val))
		}
		if _, _, err := ctl.MultiExec(seedOps); err != nil {
			return LoadResult{}, fmt.Errorf("seeding: %w", err)
		}
	}
	statsBefore, err := ctl.Stats()
	if err != nil {
		return LoadResult{}, err
	}

	workers := make([]*loadWorker, cfg.Conns)
	for i := range workers {
		cl, err := cfg.dial()
		if err != nil {
			return LoadResult{}, err
		}
		w := &loadWorker{cl: cl, rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
		if cfg.Skew > 1 {
			w.zipf = rand.NewZipf(w.rng, cfg.Skew, 1, uint64(cfg.Keys-1))
		}
		workers[i] = w
	}

	var (
		stop      atomic.Bool
		truncated atomic.Bool // a connection died mid-window
		wg        sync.WaitGroup
		ferr      atomic.Value
		feederC   *Client
	)

	// Feeder: keeps the blocking token keyspace supplied so BTAKErs
	// always eventually wake. It drives a pipelined window — a burst of
	// SETs per flush — so one throttled connection can keep up with many
	// takers. Throttled so it does not dominate the measured throughput.
	if cfg.BlockingRatio > 0 {
		feederC, err = cfg.dial()
		if err != nil {
			return LoadResult{}, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fp := feederC.Pipe()
			i := 0
			for !stop.Load() {
				for j := 0; j < 8; j++ {
					fp.Set(blockKey(i%cfg.BlockKeys), val)
					i++
				}
				for fp.Outstanding() > 0 {
					if _, err := fp.Recv(); err != nil {
						if !stop.Load() {
							if isAbortedConn(err) {
								truncated.Store(true)
							} else {
								ferr.Store(err)
							}
						}
						return
					}
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	t0 := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *loadWorker) {
			defer wg.Done()
			if cfg.Pipeline > 1 {
				w.runPipelined(&cfg, &stop, val)
			} else {
				w.run(&cfg, &stop, val)
			}
		}(w)
	}

	time.Sleep(cfg.Duration)
	stop.Store(true)
	// Grace for in-flight round trips, then cut blocked stragglers
	// loose: a parked BTAKE only returns when a token arrives, and the
	// feeder has stopped.
	grace := time.AfterFunc(250*time.Millisecond, func() {
		for _, w := range workers {
			w.cl.Close()
		}
		if feederC != nil {
			feederC.Close()
		}
	})
	wg.Wait()
	grace.Stop()
	elapsed := time.Since(t0)

	if e := ferr.Load(); e != nil {
		return LoadResult{}, fmt.Errorf("feeder: %w", e.(error))
	}

	res := LoadResult{Elapsed: elapsed, Truncated: truncated.Load()}
	var hist latHist
	for _, w := range workers {
		res.Ops += w.ops
		res.Errors += w.errs
		res.Gets += w.gets
		res.Sets += w.sets
		res.Multis += w.multis
		res.Blocking += w.blocking
		res.Truncated = res.Truncated || w.truncated
		hist.merge(&w.hist)
	}
	if res.Ops > 0 {
		res.NsPerOp = float64(elapsed.Nanoseconds()) * float64(cfg.Conns) / float64(res.Ops)
		res.OpsPerS = float64(res.Ops) / elapsed.Seconds()
		res.P50Us = hist.quantile(0.50)
		res.P99Us = hist.quantile(0.99)
	}
	// On a truncated run the server may be gone: report the partial
	// counters (with EngineCommits zero) rather than failing the window.
	statsAfter, err := ctl.Stats()
	switch {
	case err == nil:
		eng := statsAfter.Engine.Sub(statsBefore.Engine)
		res.EngineCommits = eng.Commits + eng.LongCommits
	case isAbortedConn(err):
		res.Truncated = true
	default:
		return res, err
	}
	for _, w := range workers {
		w.cl.Close()
	}
	if feederC != nil {
		feederC.Close() // no-op when the grace timer already cut it loose
	}
	return res, nil
}

// run is one worker's closed loop (synchronous round trips).
func (w *loadWorker) run(cfg *LoadConfig, stop *atomic.Bool, val []byte) {
	defer w.cl.Close()
	scratch := make([]MultiOp, 0, cfg.TxnSize)
	for !stop.Load() {
		x := w.rng.Float64()
		var err error
		t0 := time.Now()
		switch {
		case x < cfg.BlockingRatio:
			_, err = w.cl.BTake(blockKey(w.rng.Intn(cfg.BlockKeys)))
			w.blocking++
		case x < cfg.BlockingRatio+cfg.MultiRatio:
			scratch = scratch[:0]
			for i := 0; i < cfg.TxnSize; i++ {
				k := loadKey(w.key(cfg))
				if i%2 == 0 {
					scratch = append(scratch, MGet(k))
				} else {
					scratch = append(scratch, MSet(k, val))
				}
			}
			_, _, err = w.cl.MultiExec(scratch)
			w.multis++
		default:
			k := loadKey(w.key(cfg))
			if w.rng.Float64() < cfg.ReadRatio {
				_, _, err = w.cl.Get(k)
				w.gets++
			} else {
				err = w.cl.Set(k, val)
				w.sets++
			}
		}
		if err != nil {
			if stop.Load() {
				return
			}
			if isAbortedConn(err) {
				w.truncated = true
				return
			}
			w.errs++
		}
		w.hist.record(time.Since(t0))
		w.ops++
	}
}

// runPipelined is one worker's windowed loop: enqueue cfg.Pipeline
// requests, flush (once with cfg.Batch, per-request otherwise), drain
// every reply, repeat. Latency is measured enqueue-to-reply per
// request, matched by sequence ID (blocking replies can arrive out of
// order).
func (w *loadWorker) runPipelined(cfg *LoadConfig, stop *atomic.Bool, val []byte) {
	defer w.cl.Close()
	p := w.cl.Pipe()
	scratch := make([]MultiOp, 0, cfg.TxnSize)
	t0s := make(map[uint64]time.Time, cfg.Pipeline)
	for !stop.Load() {
		for i := 0; i < cfg.Pipeline; i++ {
			x := w.rng.Float64()
			var seq uint64
			switch {
			case x < cfg.BlockingRatio:
				seq = p.BTake(blockKey(w.rng.Intn(cfg.BlockKeys)))
				w.blocking++
			case x < cfg.BlockingRatio+cfg.MultiRatio:
				scratch = scratch[:0]
				for j := 0; j < cfg.TxnSize; j++ {
					k := loadKey(w.key(cfg))
					if j%2 == 0 {
						scratch = append(scratch, MGet(k))
					} else {
						scratch = append(scratch, MSet(k, val))
					}
				}
				seq, _ = p.Multi(scratch)
				w.multis++
			default:
				k := loadKey(w.key(cfg))
				if w.rng.Float64() < cfg.ReadRatio {
					seq = p.Get(k)
					w.gets++
				} else {
					seq = p.Set(k, val)
					w.sets++
				}
			}
			t0s[seq] = time.Now()
			if !cfg.Batch {
				if err := p.Flush(); err != nil {
					w.truncated = !stop.Load()
					return
				}
			}
		}
		for p.Outstanding() > 0 {
			r, err := p.Recv()
			if err != nil {
				// Connection cut (deadline grace, server killed) or closed
				// server: a truncated window, unless we are the ones
				// shutting down.
				w.truncated = !stop.Load()
				return
			}
			if t0, ok := t0s[r.Seq]; ok {
				w.hist.record(time.Since(t0))
				delete(t0s, r.Seq)
			}
			if r.Err != nil {
				if stop.Load() {
					return
				}
				if isAbortedConn(r.Err) {
					w.truncated = true
					return
				}
				w.errs++
			}
			w.ops++
		}
	}
}

// key draws a key index under the configured distribution.
func (w *loadWorker) key(cfg *LoadConfig) int {
	if w.zipf != nil {
		return int(w.zipf.Uint64())
	}
	return w.rng.Intn(cfg.Keys)
}

func loadKey(i int) string  { return "k:" + strconv.Itoa(i) }
func blockKey(i int) string { return "bq:" + strconv.Itoa(i) }
