package server

import (
	"bytes"
	"errors"
	"fmt"

	"tbtm"
	"tbtm/structs"
)

// ErrServerClosed reports an operation refused — or a blocked operation
// woken — because the server is shutting down.
var ErrServerClosed = errors.New("server: closed")

// errClientGone wakes a parked operation whose client disconnected; the
// connection is torn down without consuming the watched key.
var errClientGone = errors.New("server: client disconnected")

// scriptAbort is returned from inside an OpMulti transaction body when a
// CAS sub-op fails: it is non-retryable, so Atomic aborts the attempt
// and nothing in the script commits. failed is the index of the sub-op
// that failed.
type scriptAbort struct{ failed int }

func (a *scriptAbort) Error() string {
	return fmt.Sprintf("server: multi script aborted at op %d", a.failed)
}

// Classifier sites for the executor's update paths. They are package
// constants on purpose: AtomicSite keys its per-site statistics by the
// string, and building the name per request ("set:"+key and the like)
// would both allocate on the hot path and explode the site table.
// TestWarmServerOpAllocs pins the no-per-request-allocation property.
const (
	siteSet   = "tbtmd/set"
	siteDel   = "tbtmd/del"
	siteCas   = "tbtmd/cas"
	siteMulti = "tbtmd/multi"
	siteBTake = "tbtmd/btake"
	siteBatch = "tbtmd/batch"
)

// store is the server's transactional state: a hash map holding the
// values and a skip-list index over the keys for ordered RANGE scans,
// updated together inside every writing transaction, plus the shutdown
// flag blocking operations watch.
//
// Values are stored as the []byte handed in, never copied or mutated
// afterwards (the library's immutable-snapshot rule), so callers must
// pass buffers they will not reuse — the connection handler copies out
// of its frame buffer, and readers may send a returned value without
// copying.
type store struct {
	vals *structs.Map[string, []byte]
	keys *structs.SkipList[string]
	// closed is read by blocking bodies on their retry path only, so it
	// joins the parked footprint exactly when a client is parked: the
	// shutdown commit wakes every parked client.
	closed *tbtm.Var[bool]
	// dur is the write-ahead state (nil without Config.DataDir). Update
	// methods route through their *Durable counterparts when set; the
	// *Mem methods below are the raw in-memory paths either way, and the
	// only paths recovery seeding uses. See server/durable.go.
	dur *durability
}

func newStore(tm *tbtm.TM, buckets int) store {
	return store{
		vals:   structs.NewMap[string, []byte](tm, buckets, structs.StringHash),
		keys:   structs.NewSkipList[string](tm, func(a, b string) bool { return a < b }),
		closed: tbtm.NewVar(tm, false),
	}
}

// getTx reads key inside tx.
func (s *store) getTx(tx tbtm.Tx, key string) ([]byte, bool, error) {
	return s.vals.Get(tx, key)
}

// setTx writes key inside tx, maintaining the range index.
func (s *store) setTx(tx tbtm.Tx, key string, val []byte) error {
	inserted, err := s.vals.Put(tx, key, val)
	if err != nil {
		return err
	}
	if inserted {
		_, err = s.keys.Insert(tx, key)
	}
	return err
}

// delTx removes key inside tx, maintaining the range index.
func (s *store) delTx(tx tbtm.Tx, key string) (bool, error) {
	deleted, err := s.vals.Delete(tx, key)
	if err != nil || !deleted {
		return false, err
	}
	if _, err := s.keys.Remove(tx, key); err != nil {
		return false, err
	}
	return true, nil
}

// casTx compares-and-swaps key inside tx: the swap applies iff the key's
// presence matches expectPresent and, when present, its bytes equal
// expect.
func (s *store) casTx(tx tbtm.Tx, key string, expectPresent bool, expect, val []byte) (bool, error) {
	cur, ok, err := s.vals.Get(tx, key)
	if err != nil {
		return false, err
	}
	if ok != expectPresent || (ok && !bytes.Equal(cur, expect)) {
		return false, nil
	}
	return true, s.setTx(tx, key, val)
}

// get runs a single-key read in its own short read-only transaction.
func (s *store) get(th *tbtm.Thread, key string) (val []byte, ok bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		val, ok, e = s.getTx(tx, key)
		return e
	})
	return
}

// set runs a single-key write under the classifier's siteSet.
func (s *store) set(th *tbtm.Thread, key string, val []byte) error {
	if s.dur != nil {
		return s.setDurable(th, key, val)
	}
	return s.setMem(th, key, val)
}

func (s *store) setMem(th *tbtm.Thread, key string, val []byte) error {
	return th.AtomicSite(siteSet, func(tx tbtm.Tx) error {
		return s.setTx(tx, key, val)
	})
}

// del runs a single-key delete under siteDel.
func (s *store) del(th *tbtm.Thread, key string) (bool, error) {
	if s.dur != nil {
		return s.delDurable(th, key)
	}
	return s.delMem(th, key)
}

func (s *store) delMem(th *tbtm.Thread, key string) (deleted bool, err error) {
	err = th.AtomicSite(siteDel, func(tx tbtm.Tx) error {
		var e error
		deleted, e = s.delTx(tx, key)
		return e
	})
	return
}

// cas runs a compare-and-swap under siteCas.
func (s *store) cas(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (bool, error) {
	if s.dur != nil {
		return s.casDurable(th, key, expectPresent, expect, val)
	}
	return s.casMem(th, key, expectPresent, expect, val)
}

func (s *store) casMem(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (swapped bool, err error) {
	err = th.AtomicSite(siteCas, func(tx tbtm.Tx) error {
		var e error
		swapped, e = s.casTx(tx, key, expectPresent, expect, val)
		return e
	})
	return
}

// kv is one key/value pair of a RANGE reply.
type kv struct {
	key string
	val []byte
}

// rangeScan returns, in one long read-only transaction, up to limit
// pairs with from <= key < to (to == "" means unbounded above, limit 0
// means unlimited). The whole scan is one consistent snapshot.
func (s *store) rangeScan(th *tbtm.Thread, from, to string, limit int) ([]kv, error) {
	var out []kv
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		out = out[:0]
		return s.keys.AscendFrom(tx, from, func(k string) (bool, error) {
			if to != "" && k >= to {
				return false, nil
			}
			v, ok, err := s.vals.Get(tx, k)
			if err != nil {
				return false, err
			}
			if ok { // the index is maintained with the map; ok is always true
				out = append(out, kv{key: k, val: v})
			}
			return limit == 0 || len(out) < limit, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// subResult is the outcome of one sub-op of a multi script.
type subResult struct {
	status  Status
	val     []byte
	present bool // OpGet found / OpDel deleted / OpCas swapped
}

// multiSub is one script operation with its key and stored value
// already materialised (string key, private value copy): the conversion
// is retry-invariant, so callers do it ONCE before the transaction
// rather than on every conflict re-run. expect may alias the caller's
// frame buffer — it is only compared inside the attempt, never stored.
type multiSub struct {
	op            Op
	key           string
	val           []byte
	expect        []byte
	expectPresent bool
}

// materialize converts parsed sub-requests into retry-stable script
// entries, reusing dst.
func materialize(subs []subReq, dst []multiSub) []multiSub {
	dst = dst[:0]
	for i := range subs {
		sub := &subs[i]
		m := multiSub{op: sub.op, key: string(sub.key), expect: sub.expect, expectPresent: sub.expectPresent}
		if sub.op == OpSet || sub.op == OpCas {
			m.val = copyBytes(sub.val)
		}
		dst = append(dst, m)
	}
	return dst
}

// multi executes a script as one transaction under siteMulti. committed
// reports whether the script took effect: a failed CAS returns
// committed = false with results up to and including the failed sub-op,
// and nothing is written. results is reset and refilled on every attempt
// so the caller can pass a reused buffer. A script with no write ops
// takes the plain path even on a durable store: it cannot log anything,
// and a read-only script stays answerable in read-only mode.
func (s *store) multi(th *tbtm.Thread, subs []multiSub, results *[]subResult) (bool, error) {
	if s.dur != nil && !readOnlySubs(subs) {
		return s.multiDurable(th, subs, results)
	}
	return s.multiMem(th, subs, results)
}

// readOnlySubs reports whether every sub-op is a GET.
func readOnlySubs(subs []multiSub) bool {
	for i := range subs {
		if subs[i].op != OpGet {
			return false
		}
	}
	return true
}

func (s *store) multiMem(th *tbtm.Thread, subs []multiSub, results *[]subResult) (committed bool, err error) {
	err = th.AtomicSite(siteMulti, func(tx tbtm.Tx) error {
		*results = (*results)[:0]
		for i := range subs {
			sub := &subs[i]
			res := subResult{status: StatusOK}
			switch sub.op {
			case OpGet:
				v, ok, err := s.getTx(tx, sub.key)
				if err != nil {
					return err
				}
				res.val, res.present = v, ok
				if !ok {
					res.status = StatusNotFound
				}
			case OpSet:
				if err := s.setTx(tx, sub.key, sub.val); err != nil {
					return err
				}
			case OpDel:
				ok, err := s.delTx(tx, sub.key)
				if err != nil {
					return err
				}
				res.present = ok
			case OpCas:
				ok, err := s.casTx(tx, sub.key, sub.expectPresent, sub.expect, sub.val)
				if err != nil {
					return err
				}
				res.present = ok
				if !ok {
					*results = append(*results, res)
					return &scriptAbort{failed: i}
				}
			default:
				return fmt.Errorf("server: opcode %s not valid in multi", sub.op)
			}
			*results = append(*results, res)
		}
		return nil
	})
	var abort *scriptAbort
	if errors.As(err, &abort) {
		return false, nil
	}
	return err == nil, err
}

// execBatch runs a pipelined batch of independent single-key operations
// under ONE transaction — one lease, one begin→commit window, one
// commit tick for the whole batch. This is the server-side analogue of
// the engine's amortized snapshot validation: k wire ops pay one commit
// instead of k.
//
// Semantics are those of the ops run back to back at the commit point:
// reads see the batch's own earlier writes, and a failed CAS is a
// RESULT (present = false), not an abort — unlike a MULTI script, the
// batch's ops belong to independent requests that merely shared a
// window, so one op's compare failure must not roll back its
// neighbours. results is reset and refilled on every conflict re-run.
func (s *store) execBatch(th *tbtm.Thread, subs []multiSub, results *[]subResult) error {
	if s.dur != nil {
		return s.execBatchDurable(th, subs, results)
	}
	return s.execBatchMem(th, subs, results)
}

func (s *store) execBatchMem(th *tbtm.Thread, subs []multiSub, results *[]subResult) error {
	return th.AtomicSite(siteBatch, func(tx tbtm.Tx) error {
		return s.batchBody(tx, subs, results)
	})
}

// execBatchRO is execBatch for an all-read batch: a short read-only
// transaction, so a pipelined GET burst rides the engine's zero-alloc
// read path and never touches the commit path at all.
func (s *store) execBatchRO(th *tbtm.Thread, subs []multiSub, results *[]subResult) error {
	return th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		return s.batchBody(tx, subs, results)
	})
}

// batchBody executes the batch ops inside tx, one subResult each.
func (s *store) batchBody(tx tbtm.Tx, subs []multiSub, results *[]subResult) error {
	*results = (*results)[:0]
	for i := range subs {
		sub := &subs[i]
		res := subResult{status: StatusOK}
		switch sub.op {
		case OpGet:
			v, ok, err := s.getTx(tx, sub.key)
			if err != nil {
				return err
			}
			res.val, res.present = v, ok
			if !ok {
				res.status = StatusNotFound
			}
		case OpSet:
			if err := s.setTx(tx, sub.key, sub.val); err != nil {
				return err
			}
		case OpDel:
			ok, err := s.delTx(tx, sub.key)
			if err != nil {
				return err
			}
			res.present = ok
		case OpCas:
			ok, err := s.casTx(tx, sub.key, sub.expectPresent, sub.expect, sub.val)
			if err != nil {
				return err
			}
			res.present = ok // a failed CAS is a result here, never an abort
		default:
			return fmt.Errorf("server: opcode %s not valid in a batch", sub.op)
		}
		*results = append(*results, res)
	}
	return nil
}

// execOne runs a single batch entry in its own transaction — the
// depth-1 path, and the re-run path when a whole batch failed with a
// genuine error ("first error doesn't poison later independent ops":
// each op then succeeds or fails on its own).
func (s *store) execOne(th *tbtm.Thread, sub *multiSub) (subResult, error) {
	res := subResult{status: StatusOK}
	switch sub.op {
	case OpGet:
		v, ok, err := s.get(th, sub.key)
		if err != nil {
			return res, err
		}
		res.val, res.present = v, ok
		if !ok {
			res.status = StatusNotFound
		}
	case OpSet:
		if err := s.set(th, sub.key, sub.val); err != nil {
			return res, err
		}
	case OpDel:
		ok, err := s.del(th, sub.key)
		if err != nil {
			return res, err
		}
		res.present = ok
	case OpCas:
		ok, err := s.cas(th, sub.key, sub.expectPresent, sub.expect, sub.val)
		if err != nil {
			return res, err
		}
		res.present = ok
	default:
		return res, fmt.Errorf("server: opcode %s not valid in a batch", sub.op)
	}
	return res, nil
}

// btake blocks until key exists, then deletes and returns it; woken by
// shutdown it returns ErrServerClosed, and woken by the connection's
// cancel flag (the client hung up mid-park) it returns errClientGone
// WITHOUT consuming the key. The shutdown and cancel flags are read
// only on the empty path so they join exactly the parked footprint.
// On a durable store the park happens outside the checkpoint gate (see
// btakeDurable); here the whole wait-and-take is one transaction.
func (s *store) btake(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) ([]byte, error) {
	if s.dur != nil {
		return s.btakeDurable(th, key, cancel)
	}
	return s.btakeMem(th, key, cancel)
}

func (s *store) btakeMem(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) (val []byte, err error) {
	err = th.AtomicSite(siteBTake, func(tx tbtm.Tx) error {
		v, ok, e := s.getTx(tx, key)
		if e != nil {
			return e
		}
		if !ok {
			if e := s.checkLive(tx, cancel); e != nil {
				return e
			}
			return tbtm.Retry(tx)
		}
		if _, e := s.delTx(tx, key); e != nil {
			return e
		}
		val = v
		return nil
	})
	return
}

// checkLive returns the reason a blocked operation must give up: server
// shutdown or (when the caller watches one) a disconnected client. Both
// variables are read here, on the about-to-park path, so their commits
// wake the parked transaction.
func (s *store) checkLive(tx tbtm.Tx, cancel *tbtm.Var[bool]) error {
	halt, err := s.closed.Read(tx)
	if err != nil {
		return err
	}
	if halt {
		return ErrServerClosed
	}
	if cancel != nil {
		gone, err := cancel.Read(tx)
		if err != nil {
			return err
		}
		if gone {
			return errClientGone
		}
	}
	return nil
}

// wait blocks until key's state differs from (oldPresent, old), then
// returns the new state; woken by shutdown it returns ErrServerClosed,
// by a client disconnect errClientGone (see btake).
func (s *store) wait(th *tbtm.Thread, key string, oldPresent bool, old []byte, cancel *tbtm.Var[bool]) (val []byte, present bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		v, ok, e := s.getTx(tx, key)
		if e != nil {
			return e
		}
		if ok != oldPresent || (ok && !bytes.Equal(v, old)) {
			val, present = v, ok
			return nil
		}
		if e := s.checkLive(tx, cancel); e != nil {
			return e
		}
		return tbtm.Retry(tx)
	})
	return
}

// markClosed commits the shutdown flag, waking every parked client.
func (s *store) markClosed(th *tbtm.Thread) error {
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return s.closed.Write(tx, true)
	})
}

// copyBytes returns a private copy of b; transactional values must not
// alias the reusable frame buffer.
func copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
