// End-to-end tests for the pipelined protocol: ordering, batch
// atomicity policy, and blocking ops parked mid-pipeline. Each test
// runs against both connection I/O drivers — the shared event loops
// and the portable goroutine-per-connection fallback (on platforms
// without a native poller the two cases coincide).
package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// forEachDriver runs fn once per connection I/O driver.
func forEachDriver(t *testing.T, base Config, fn func(t *testing.T, cfg Config)) {
	t.Run("eventloop", func(t *testing.T) {
		cfg := base
		cfg.EventLoops = 0
		fn(t, cfg)
	})
	t.Run("fallback", func(t *testing.T) {
		cfg := base
		cfg.EventLoops = -1
		fn(t, cfg)
	})
}

// TestServerPipelinedOrdering pins the ordering guarantee: the
// responses to a window of non-blocking requests arrive in request
// order, whatever mix of batched and solo ops the window decodes into.
func TestServerPipelinedOrdering(t *testing.T) {
	forEachDriver(t, Config{}, func(t *testing.T, cfg Config) {
		_, addr := startServer(t, cfg)
		cl := dialT(t, addr)
		p := cl.Pipe()

		const window = 64
		var seqs []uint64
		for i := 0; i < window; i++ {
			k := fmt.Sprintf("k%d", i%8)
			switch i % 4 {
			case 0:
				seqs = append(seqs, p.Set(k, []byte(fmt.Sprintf("v%d", i))))
			case 1:
				seqs = append(seqs, p.Get(k))
			case 2:
				seqs = append(seqs, p.Ping()) // splits the batch; order must hold regardless
			default:
				seqs = append(seqs, p.Del(k))
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		for i := 0; i < window; i++ {
			r, err := p.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if r.Err != nil {
				t.Fatalf("reply %d: %v", i, r.Err)
			}
			if r.Seq != seqs[i] {
				t.Fatalf("reply %d out of order: seq %d, want %d", i, r.Seq, seqs[i])
			}
		}
		if p.Outstanding() != 0 {
			t.Fatalf("outstanding = %d after draining", p.Outstanding())
		}
	})
}

// TestServerPipelinedSeesOwnWrites pins read-your-writes through one
// pipelined window: a GET after a SET of the same key in the same
// burst (likely the same batch transaction) observes the write.
func TestServerPipelinedSeesOwnWrites(t *testing.T) {
	forEachDriver(t, Config{}, func(t *testing.T, cfg Config) {
		_, addr := startServer(t, cfg)
		cl := dialT(t, addr)
		p := cl.Pipe()

		p.Set("rw", []byte("one"))
		gSeq := p.Get("rw")
		p.Set("rw", []byte("two"))
		g2Seq := p.Get("rw")
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		for p.Outstanding() > 0 {
			r, err := p.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if r.Err != nil {
				t.Fatalf("reply %d: %v", r.Seq, r.Err)
			}
			switch r.Seq {
			case gSeq:
				if !r.OK || !bytes.Equal(r.Val, []byte("one")) {
					t.Fatalf("first get = %q ok=%v, want \"one\"", r.Val, r.OK)
				}
			case g2Seq:
				if !r.OK || !bytes.Equal(r.Val, []byte("two")) {
					t.Fatalf("second get = %q ok=%v, want \"two\"", r.Val, r.OK)
				}
			}
		}
	})
}

// TestServerBatchCasIndependence pins the batch-atomicity policy over
// the wire: a failed CAS inside a pipelined window is a per-op result
// (swapped = false), and the independent ops around it still commit —
// unlike OpMulti, where a failed CAS aborts the whole script.
func TestServerBatchCasIndependence(t *testing.T) {
	forEachDriver(t, Config{}, func(t *testing.T, cfg Config) {
		_, addr := startServer(t, cfg)
		cl := dialT(t, addr)
		if err := cl.Set("guard", []byte("actual")); err != nil {
			t.Fatalf("seed: %v", err)
		}
		p := cl.Pipe()
		aSeq := p.Set("a", []byte("1"))
		casSeq := p.Cas("guard", []byte("wrong"), true, []byte("clobbered"))
		bSeq := p.Set("b", []byte("2"))
		gaSeq := p.Get("a")
		gbSeq := p.Get("b")
		ggSeq := p.Get("guard")
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		replies := map[uint64]Reply{}
		for p.Outstanding() > 0 {
			r, err := p.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if r.Err != nil {
				t.Fatalf("reply %d: %v", r.Seq, r.Err)
			}
			r.Val = append([]byte(nil), r.Val...) // Val is only valid until the next Recv
			replies[r.Seq] = r
		}
		if replies[casSeq].OK {
			t.Fatal("failed CAS reported swapped")
		}
		for _, s := range []uint64{aSeq, bSeq} {
			if !replies[s].OK {
				t.Fatalf("independent SET (seq %d) did not succeed", s)
			}
		}
		if r := replies[gaSeq]; !r.OK || !bytes.Equal(r.Val, []byte("1")) {
			t.Fatalf("a = %q ok=%v after failed sibling CAS, want \"1\"", r.Val, r.OK)
		}
		if r := replies[gbSeq]; !r.OK || !bytes.Equal(r.Val, []byte("2")) {
			t.Fatalf("b = %q ok=%v after failed sibling CAS, want \"2\"", r.Val, r.OK)
		}
		if r := replies[ggSeq]; !r.OK || !bytes.Equal(r.Val, []byte("actual")) {
			t.Fatalf("guard = %q ok=%v, want untouched \"actual\"", r.Val, r.OK)
		}
	})
}

// TestServerPipelinedParkedBTake pins the blocking/pipelining split: a
// BTAKE that parks mid-window neither blocks the requests behind it
// nor reorders them; its own response arrives later, out of order,
// matched by sequence ID.
func TestServerPipelinedParkedBTake(t *testing.T) {
	forEachDriver(t, Config{}, func(t *testing.T, cfg Config) {
		srv, addr := startServer(t, cfg)
		cl := dialT(t, addr)
		feeder := dialT(t, addr)
		p := cl.Pipe()

		setSeq := p.Set("k1", []byte("v1"))
		btakeSeq := p.BTake("queue") // key absent: parks
		getSeq := p.Get("k1")
		pingSeq := p.Ping()
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		// The three non-blocking replies arrive in request order, without
		// waiting for the parked BTAKE.
		for _, want := range []uint64{setSeq, getSeq, pingSeq} {
			r, err := p.Recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if r.Err != nil {
				t.Fatalf("reply %d: %v", r.Seq, r.Err)
			}
			if r.Seq != want {
				t.Fatalf("non-blocking reply seq %d, want %d (BTAKE must not block/reorder)", r.Seq, want)
			}
			if r.Seq == getSeq && !bytes.Equal(r.Val, []byte("v1")) {
				t.Fatalf("get past parked BTAKE = %q, want \"v1\"", r.Val)
			}
		}
		// Feed the queue; the BTAKE reply arrives out of order.
		waitParked(t, srv.TM(), 1)
		if err := feeder.Set("queue", []byte("job")); err != nil {
			t.Fatalf("feed: %v", err)
		}
		r, err := p.Recv()
		if err != nil {
			t.Fatalf("recv btake: %v", err)
		}
		if r.Seq != btakeSeq || r.Err != nil || !bytes.Equal(r.Val, []byte("job")) {
			t.Fatalf("btake reply = seq %d val %q err %v, want seq %d \"job\"", r.Seq, r.Val, r.Err, btakeSeq)
		}
		// The take consumed the key.
		if _, ok, err := feeder.Get("queue"); err != nil || ok {
			t.Fatalf("queue after btake: ok=%v err=%v, want consumed", ok, err)
		}
	})
}

// TestServerPipelinedBlockingDisconnect pins lease reclamation for a
// pipelining client that parks a BTAKE and then vanishes: teardown
// commits the connection's cancel flag, the parked transaction wakes
// with errClientGone, and the blocking lease returns to the pool
// without consuming the key.
func TestServerPipelinedBlockingDisconnect(t *testing.T) {
	forEachDriver(t, Config{BlockingLeases: 1}, func(t *testing.T, cfg Config) {
		srv, addr := startServer(t, cfg)
		cl := dialT(t, addr)
		p := cl.Pipe()
		p.BTake("never-fed")
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		waitParked(t, srv.TM(), 1)
		cl.Close()

		// The single blocking lease must come back: a second client's
		// blocking op can only run if the first lease was reclaimed.
		cl2 := dialT(t, addr)
		done := make(chan error, 1)
		go func() {
			_, err := cl2.BTake("fed")
			done <- err
		}()
		feeder := dialT(t, addr)
		deadline := time.Now().Add(10 * time.Second)
		for srv.TM().Stats().Parks < 2 {
			if time.Now().After(deadline) {
				t.Fatal("second BTAKE never parked: blocking lease not reclaimed")
			}
			time.Sleep(time.Millisecond)
		}
		if err := feeder.Set("fed", []byte("x")); err != nil {
			t.Fatalf("feed: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("second btake: %v", err)
		}
		// The abandoned key must NOT have been consumed by the vanished
		// client's woken transaction.
		if _, ok, err := feeder.Get("never-fed"); err != nil || ok {
			t.Fatalf("never-fed: ok=%v err=%v, want still absent (not created, not consumed)", ok, err)
		}
	})
}
