// The unified telemetry plane: one registry adapting every layer's
// existing counters — engine op histograms, executor lease gauges, the
// TM's backend counters and abort-reason taxonomy, WAL group-commit
// and fsync metrics, replication lag — into Prometheus text format,
// plus the debug HTTP surface (/metrics, /trace, net/http/pprof).
//
// Families are Collect closures over live atomics; the registry holds
// no state and the serving hot path never sees a scrape.
package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"tbtm/internal/telemetry"
)

// Recorder returns the server's flight recorder (for embedding servers
// and tools that arm/disarm or dump it directly).
func (s *Server) Recorder() *telemetry.Recorder { return s.rec }

// Registry returns the server's metrics registry, building it on first
// use (WAL and replication families register only when the server has
// those layers).
func (s *Server) Registry() *telemetry.Registry {
	s.regOnce.Do(func() { s.reg = s.buildRegistry() })
	return s.reg
}

// opLabel renders the op label pair for one opcode.
func opLabel(op Op) string { return fmt.Sprintf("op=%q", op.String()) }

func (s *Server) buildRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	m := s.exec.Metrics()

	// Wire ops: counts, errors, and latency by opcode, plus the
	// batching amortization counters.
	r.MustRegister(
		telemetry.Family{
			Name: "tbtmd_ops_total", Help: "Wire operations completed, by opcode.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				for op := Op(1); op < OpMax; op++ {
					if n := m.OpLatency(op).Count(); n > 0 {
						e.Value(opLabel(op), float64(n))
					}
				}
			},
		},
		telemetry.Family{
			Name: "tbtmd_op_errors_total", Help: "Wire operations that returned an error, by opcode.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				for op := Op(1); op < OpMax; op++ {
					if n := m.OpErrors(op); n > 0 {
						e.Value(opLabel(op), float64(n))
					}
				}
			},
		},
		telemetry.Family{
			Name: "tbtmd_op_latency_seconds", Help: "Wire operation latency, by opcode (log2 buckets).", Kind: telemetry.Histogram,
			Collect: func(e *telemetry.Emitter) {
				for op := Op(1); op < OpMax; op++ {
					if h := m.OpLatency(op); h.Count() > 0 {
						e.Hist(opLabel(op), h, 1e-9)
					}
				}
			},
		},
		telemetry.Family{
			Name: "tbtmd_batches_total", Help: "Pipelined batches executed under one lease.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(m.BatchCount())) },
		},
		telemetry.Family{
			Name: "tbtmd_batched_ops_total", Help: "Wire ops carried by pipelined batches.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(m.BatchedOps())) },
		},
		telemetry.Family{
			Name: "tbtmd_batch_latency_seconds", Help: "Whole-batch execution latency.", Kind: telemetry.Histogram,
			Collect: func(e *telemetry.Emitter) { e.Hist("", m.BatchLatency(), 1e-9) },
		},
	)

	// Executor lease pools and backpressure.
	r.MustRegister(
		telemetry.Family{
			Name: "tbtmd_executor_leases", Help: "Configured lease pool sizes, by tranche.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) {
				st := s.exec.MetricsSnapshot().Executor
				e.Value(`tranche="fast"`, float64(st.FastLeases))
				e.Value(`tranche="blocking"`, float64(st.BlockingLeases))
			},
		},
		telemetry.Family{
			Name: "tbtmd_executor_in_use", Help: "Leases currently held, by tranche.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) {
				st := s.exec.MetricsSnapshot().Executor
				e.Value(`tranche="fast"`, float64(st.FastInUse))
				e.Value(`tranche="blocking"`, float64(st.BlockingInUse))
			},
		},
		telemetry.Family{
			Name: "tbtmd_executor_waiters", Help: "Goroutines queued for a lease right now.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) {
				e.Value("", float64(s.exec.MetricsSnapshot().Executor.Waiters))
			},
		},
		telemetry.Family{
			Name: "tbtmd_executor_acquires_total", Help: "Lease acquisitions.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				e.Value("", float64(s.exec.MetricsSnapshot().Executor.Acquires))
			},
		},
		telemetry.Family{
			Name: "tbtmd_executor_acquire_waits_total", Help: "Lease acquisitions that had to queue.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				e.Value("", float64(s.exec.MetricsSnapshot().Executor.AcquireWaits))
			},
		},
		telemetry.Family{
			Name: "tbtmd_executor_rejects_total", Help: "Lease acquisitions abandoned (context done or shutdown).", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				e.Value("", float64(s.exec.MetricsSnapshot().Executor.Rejects))
			},
		},
		telemetry.Family{
			Name: "tbtmd_lease_wait_seconds", Help: "Wait time for lease acquisitions that queued (backpressure).", Kind: telemetry.Histogram,
			Collect: func(e *telemetry.Emitter) { e.Hist("", m.LeaseWait(), 1e-9) },
		},
	)

	// Engine backend counters (tbtm.Stats) and the abort-reason
	// taxonomy.
	r.MustRegister(
		telemetry.Family{
			Name: "tbtmd_engine_commits_total", Help: "Engine transactions committed.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.tm.Stats().Commits)) },
		},
		telemetry.Family{
			Name: "tbtmd_engine_aborts_total", Help: "Engine transactions aborted, any reason.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.tm.Stats().Aborts)) },
		},
		telemetry.Family{
			Name: "tbtmd_engine_conflicts_total", Help: "Aborts from validation failure or lost arbitration.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.tm.Stats().Conflicts)) },
		},
		telemetry.Family{
			Name: "tbtmd_engine_extensions_total", Help: "Successful snapshot extensions, by validation path.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				st := s.tm.Stats()
				e.Value(`path="fast"`, float64(st.ExtensionsFast))
				e.Value(`path="full"`, float64(st.ExtensionsFull))
			},
		},
		telemetry.Family{
			Name: "tbtmd_engine_snapshot_misses_total", Help: "Aborts because no retained version was old enough.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.tm.Stats().SnapshotMisses)) },
		},
		telemetry.Family{
			Name: "tbtmd_engine_parks_total", Help: "Threads parked in blocking Retry.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.tm.Stats().Parks)) },
		},
		telemetry.Family{
			Name: "tbtmd_engine_wakeups_total", Help: "Parked threads woken by a committed update, by outcome.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				st := s.tm.Stats()
				e.Value(`outcome="proceeded"`, float64(st.Wakeups-st.SpuriousWakeups))
				e.Value(`outcome="spurious"`, float64(st.SpuriousWakeups))
			},
		},
		telemetry.Family{
			Name: "tbtmd_abort_reasons_total", Help: "Failed server-op attempts, by abort-reason taxonomy.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) {
				a := s.tm.AbortReasons()
				e.Value(`reason="conflict"`, float64(a.Conflict))
				e.Value(`reason="aborted"`, float64(a.Aborted))
				e.Value(`reason="snapshot_miss"`, float64(a.SnapshotMiss))
				e.Value(`reason="other"`, float64(a.Other))
			},
		},
	)

	// Server-level gauges and the flight recorder's own health.
	r.MustRegister(
		telemetry.Family{
			Name: "tbtmd_conns", Help: "Open client connections.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.conns.Load())) },
		},
		telemetry.Family{
			Name: "tbtmd_inflight", Help: "Requests between decode and response write.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.inflight.Load())) },
		},
		telemetry.Family{
			Name: "tbtmd_uptime_seconds", Help: "Seconds since the server was built.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) { e.Value("", time.Since(s.start).Seconds()) },
		},
		telemetry.Family{
			Name: "tbtmd_recorder_armed", Help: "1 when the flight recorder is recording.", Kind: telemetry.Gauge,
			Collect: func(e *telemetry.Emitter) {
				v := 0.0
				if s.rec.Armed() {
					v = 1
				}
				e.Value("", v)
			},
		},
		telemetry.Family{
			Name: "tbtmd_recorder_events_total", Help: "Flight-recorder events ever recorded.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.rec.Recorded())) },
		},
		telemetry.Family{
			Name: "tbtmd_recorder_dropped_total", Help: "Flight-recorder events overwritten by ring wrap.", Kind: telemetry.Counter,
			Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.rec.Dropped())) },
		},
	)

	if s.dur != nil {
		log := s.dur.Log()
		r.MustRegister(
			telemetry.Family{
				Name: "tbtmd_wal_records_total", Help: "WAL records appended.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Records)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_batches_total", Help: "WAL group-commit batches written.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Batches)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_fsyncs_total", Help: "WAL fsync calls.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Fsyncs)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_bytes_total", Help: "WAL bytes written.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Bytes)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_rotations_total", Help: "WAL segment rotations.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Rotations)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_checkpoints_total", Help: "Checkpoints written.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Checkpoints)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_segments", Help: "Live WAL segments on disk.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().Segments)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_last_seq", Help: "Highest assigned WAL sequence number.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().LastSeq)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_checkpoint_seq", Help: "Sequence covered by the newest checkpoint.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(log.Stats().CheckpointSeq)) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_read_only", Help: "1 when a WAL failure wedged the server read-only.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) {
					v := 0.0
					if s.dur.ReadOnly() {
						v = 1
					}
					e.Value("", v)
				},
			},
			telemetry.Family{
				Name: "tbtmd_wal_fsync_seconds", Help: "WAL fsync latency (write+sync of one group-commit batch).", Kind: telemetry.Histogram,
				Collect: func(e *telemetry.Emitter) { e.Hist("", log.FsyncLatency(), 1e-9) },
			},
			telemetry.Family{
				Name: "tbtmd_wal_batch_records", Help: "Records coalesced per group-commit batch.", Kind: telemetry.Histogram,
				Collect: func(e *telemetry.Emitter) { e.Hist("", log.BatchSizes(), 1) },
			},
		)
	}

	if s.replica != nil {
		r.MustRegister(
			telemetry.Family{
				Name: "tbtmd_repl_connected", Help: "1 while the replica is streaming from its primary.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) {
					v := 0.0
					if s.replica.Stats().Connected {
						v = 1
					}
					e.Value("", v)
				},
			},
			telemetry.Family{
				Name: "tbtmd_repl_applied_seq", Help: "Highest WAL sequence applied locally.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().AppliedSeq)) },
			},
			telemetry.Family{
				Name: "tbtmd_repl_primary_seq", Help: "Highest WAL sequence the primary reported.", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().PrimarySeq)) },
			},
			telemetry.Family{
				Name: "tbtmd_repl_lag", Help: "Primary seq minus applied seq (records behind).", Kind: telemetry.Gauge,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().Lag)) },
			},
			telemetry.Family{
				Name: "tbtmd_repl_records_applied_total", Help: "Shipped WAL records applied.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().Records)) },
			},
			telemetry.Family{
				Name: "tbtmd_repl_bootstraps_total", Help: "Checkpoint bootstraps applied.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().Bootstraps)) },
			},
			telemetry.Family{
				Name: "tbtmd_repl_reconnects_total", Help: "Reconnect attempts to the primary.", Kind: telemetry.Counter,
				Collect: func(e *telemetry.Emitter) { e.Value("", float64(s.replica.Stats().Reconnects)) },
			},
		)
	}
	return r
}

// DebugHandler serves the observability surface: Prometheus metrics at
// /metrics, the flight-recorder dump at /trace (?max=N bounds the
// event count), and the standard pprof endpoints under /debug/pprof/.
// tbtmd mounts it on -debug-addr.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.Registry().Handler())
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		max := 0
		if q := req.URL.Query().Get("max"); q != "" {
			max, _ = strconv.Atoi(q)
		}
		doc, err := s.TraceJSON(max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
