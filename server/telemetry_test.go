package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tbtm/internal/telemetry"
	"tbtm/internal/wal"
)

// These tests pin the observability surface end to end: the Prometheus
// exposition scraped from a live loaded server (line-by-line format
// validation plus histogram-consistency invariants), the STATS JSON
// schema across in-memory, durable, and replica servers, the TRACE
// verb's flight-recorder dump, and the slow-op log.

// driveLoad runs a small mixed workload so every hot-path family has
// nonzero counters: sets, gets, a miss, and one failing op for the
// error counter.
func driveLoad(t *testing.T, cl *Client) {
	t.Helper()
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%d", i%8)
		if err := cl.Set(k, []byte("v")); err != nil {
			t.Fatalf("set: %v", err)
		}
		if _, ok, err := cl.Get(k); err != nil || !ok {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
	if _, ok, err := cl.Get("absent"); err != nil || ok {
		t.Fatalf("get absent: ok=%v err=%v", ok, err)
	}
}

// TestMetricsExpositionLive scrapes /metrics from a live in-process
// server under load and validates the text format line by line: every
// family announces itself with a HELP/TYPE pair before its samples,
// every sample belongs to a registered family, histograms are
// cumulative and internally consistent, and the load actually shows
// up in the op counters.
func TestMetricsExpositionLive(t *testing.T) {
	srv, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	driveLoad(t, cl)

	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}

	validateExpositionLines(t, raw, srv.Registry().Names())

	s, err := telemetry.ParseScrape(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseScrape: %v", err)
	}

	// Every registered family must expose HELP and a valid TYPE.
	for _, name := range srv.Registry().Names() {
		if s.Help[name] == "" {
			t.Errorf("family %s: missing or empty HELP", name)
		}
		switch s.Types[name] {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("family %s: TYPE = %q", name, s.Types[name])
		}
	}

	// Histogram invariants: buckets cumulative and monotone, a +Inf
	// bucket terminating the series, and _count agreeing with it.
	for key, h := range s.Hists {
		if len(h.Buckets) == 0 {
			t.Errorf("hist %s: no buckets", key)
			continue
		}
		last := h.Buckets[len(h.Buckets)-1]
		if !math.IsInf(last.Le, 1) {
			t.Errorf("hist %s: last bucket le=%v, want +Inf", key, last.Le)
		}
		var prev uint64
		for _, b := range h.Buckets {
			if b.Cum < prev {
				t.Errorf("hist %s: bucket le=%v cum=%d below previous %d", key, b.Le, b.Cum, prev)
			}
			prev = b.Cum
		}
		if last.Cum != h.Count {
			t.Errorf("hist %s: +Inf cum %d != _count %d", key, last.Cum, h.Count)
		}
		if h.Count > 0 && h.Sum < 0 {
			t.Errorf("hist %s: negative _sum %v", key, h.Sum)
		}
	}

	// The workload must be visible: op counters, engine commits, the
	// armed recorder with events, and the lease pools.
	atLeast := func(key string, min float64) {
		t.Helper()
		v, ok := s.Value(key)
		if !ok || v < min {
			t.Errorf("%s = %v (present=%v), want >= %v", key, v, ok, min)
		}
	}
	atLeast(`tbtmd_ops_total{op="get"}`, 65)
	atLeast(`tbtmd_ops_total{op="set"}`, 64)
	atLeast("tbtmd_engine_commits_total", 128)
	atLeast("tbtmd_recorder_armed", 1)
	atLeast("tbtmd_recorder_events_total", 1)
	atLeast(`tbtmd_executor_leases{tranche="fast"}`, 1)
	atLeast("tbtmd_conns", 1)
	if h := s.Hist(`tbtmd_op_latency_seconds{op="get"}`); h == nil || h.Count < 65 {
		t.Errorf("get latency histogram missing or undercounted: %+v", h)
	}
	// Latencies are seconds: a warm GET is well under a second, so the
	// scaled histogram's mean must be sane (catches a botched 1e-9
	// scale factor).
	if h := s.Hist(`tbtmd_op_latency_seconds{op="get"}`); h != nil && h.Count > 0 {
		if mean := h.Sum / float64(h.Count); mean <= 0 || mean > 1 {
			t.Errorf("get latency mean = %vs, want (0, 1s)", mean)
		}
	}
}

// validateExpositionLines walks the raw exposition text asserting the
// line grammar: HELP then TYPE for each family, samples only under
// their family's header, sample names derived from a registered
// family (bare, or histogram _bucket/_sum/_count).
func validateExpositionLines(t *testing.T, raw []byte, families []string) {
	t.Helper()
	known := make(map[string]bool, len(families))
	for _, f := range families {
		known[f] = true
	}
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && known[b] {
				return b
			}
		}
		return name
	}
	var cur string // family announced by the last HELP/TYPE pair
	pendingHelp := ""
	seen := map[string]bool{}
	for i, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				t.Errorf("line %d: HELP without text: %q", i+1, line)
			}
			pendingHelp = fields[2]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.SplitN(line, " ", 4)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if fields[2] != pendingHelp {
				t.Errorf("line %d: TYPE %s not preceded by its HELP (last HELP %q)", i+1, fields[2], pendingHelp)
			}
			cur = fields[2]
			if !known[cur] {
				t.Errorf("line %d: TYPE for unregistered family %s", i+1, cur)
			}
			if seen[cur] {
				t.Errorf("line %d: family %s announced twice", i+1, cur)
			}
			seen[cur] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			if b := base(name); b != cur {
				t.Errorf("line %d: sample %s outside its family block (current %s)", i+1, name, cur)
			}
		}
	}
	// Families render in sorted order so scrapes diff cleanly.
	if !sort.StringsAreSorted(families) {
		t.Error("Registry.Names() not sorted")
	}
}

// keySet returns the sorted keys of a decoded JSON object.
func keySet(t *testing.T, raw json.RawMessage, ctx string) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: not an object: %v", ctx, err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wantKeys(t *testing.T, got []string, ctx string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("%s keys = %v, want %v", ctx, got, want)
	}
}

// statsDoc fetches and splits the raw STATS document.
func statsDoc(t *testing.T, srv *Server) map[string]json.RawMessage {
	t.Helper()
	doc, err := srv.StatsJSON()
	if err != nil {
		t.Fatalf("StatsJSON: %v", err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(doc, &top); err != nil {
		t.Fatalf("STATS not an object: %v\n%s", err, doc)
	}
	return top
}

// TestStatsSchemaPinned pins the full STATS document shape — the keys
// monitoring dashboards and tbtmload depend on — across the three
// server roles. The wal and repl sections must appear exactly when the
// server has those layers, and the abort-reason taxonomy is always
// present.
func TestStatsSchemaPinned(t *testing.T) {
	t.Run("memory", func(t *testing.T) {
		srv, addr := startServer(t, Config{})
		cl := dialT(t, addr)
		driveLoad(t, cl)
		top := statsDoc(t, srv)
		wantKeys(t, keysOf(top), "top",
			"engine", "aborts", "metrics", "conns", "uptime_ms")
		wantKeys(t, keySet(t, top["aborts"], "aborts"), "aborts",
			"conflict", "aborted", "snapshot_miss", "other")
		wantKeys(t, keySet(t, top["metrics"], "metrics"), "metrics", "ops", "executor")
		var m struct {
			Executor map[string]json.RawMessage `json:"executor"`
			Ops      map[string]json.RawMessage `json:"ops"`
		}
		if err := json.Unmarshal(top["metrics"], &m); err != nil {
			t.Fatal(err)
		}
		var exKeys []string
		for k := range m.Executor {
			exKeys = append(exKeys, k)
		}
		sort.Strings(exKeys)
		wantKeys(t, exKeys, "metrics.executor",
			"fast_leases", "blocking_leases", "fast_in_use", "blocking_in_use",
			"waiters", "acquires", "acquire_waits", "acquire_wait_us", "rejects",
			"batches", "batched_ops")
		if _, ok := m.Ops["get"]; !ok {
			t.Errorf("metrics.ops missing %q after load: have %v", "get", len(m.Ops))
		}
		// The engine section is owned by package tbtm; assert the fields
		// the registry adapts rather than pinning the whole struct.
		eng := keySet(t, top["engine"], "engine")
		for _, k := range []string{"Commits", "Aborts", "Conflicts", "SnapshotMisses", "Parks", "Wakeups", "SpuriousWakeups", "ExtensionsFast", "ExtensionsFull"} {
			if !contains(eng, k) {
				t.Errorf("engine section missing %s (have %v)", k, eng)
			}
		}
	})

	t.Run("durable", func(t *testing.T) {
		fs := wal.NewMemFS()
		srv, cl := durableServer(t, fs, Config{})
		defer srv.Close()
		defer cl.Close()
		if err := cl.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		top := statsDoc(t, srv)
		wantKeys(t, keysOf(top), "durable top",
			"engine", "aborts", "metrics", "conns", "uptime_ms", "wal")
		wantKeys(t, keySet(t, top["wal"], "wal"), "wal",
			"mode", "records", "batches", "fsyncs", "bytes", "rotations",
			"segments", "last_seq", "checkpoint_seq", "checkpoints", "failed",
			"read_only")
		var w struct {
			Records uint64 `json:"records"`
			Fsyncs  uint64 `json:"fsyncs"`
		}
		if err := json.Unmarshal(top["wal"], &w); err != nil {
			t.Fatal(err)
		}
		if w.Records == 0 || w.Fsyncs == 0 {
			t.Errorf("durable server after a strict SET: records=%d fsyncs=%d, want both > 0", w.Records, w.Fsyncs)
		}
	})

	t.Run("replica", func(t *testing.T) {
		fs := wal.NewMemFS()
		psrv, pcl := durableServer(t, fs, Config{})
		defer psrv.Close()
		defer pcl.Close()
		if err := pcl.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		rsrv, _ := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
		waitReplicaCaughtUp(t, psrv, rsrv)
		top := statsDoc(t, rsrv)
		wantKeys(t, keysOf(top), "replica top",
			"engine", "aborts", "metrics", "conns", "uptime_ms", "repl")
		wantKeys(t, keySet(t, top["repl"], "repl"), "repl",
			"primary", "connected", "primary_seq", "applied_seq", "lag",
			"records_applied", "bootstraps", "reconnects")
	})
}

// keysOf returns the sorted key set of an already-split document.
func keysOf(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// traceDump mirrors the recorder's DumpJSON document.
type traceDump struct {
	Armed      bool   `json:"armed"`
	RingEvents int    `json:"ring_events"`
	Rings      int    `json:"rings"`
	Recorded   uint64 `json:"recorded"`
	Dropped    uint64 `json:"dropped"`
	Events     []struct {
		TS   int64  `json:"ts_ns"`
		Dur  int64  `json:"dur_ns"`
		Kind string `json:"kind"`
		Op   string `json:"op,omitempty"`
		Conn uint32 `json:"conn"`
		Seq  uint64 `json:"seq"`
		Aux  uint32 `json:"aux,omitempty"`
	} `json:"events"`
	Truncated bool `json:"truncated,omitempty"`
}

// TestTraceVerbEndToEnd drives load through a live server and pulls
// the flight recorder over the wire with the TRACE verb: the dump must
// be armed, time-ordered, carry the phase taxonomy for the executed
// ops, and honor the max bound (over HTTP /trace too).
func TestTraceVerbEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	driveLoad(t, cl)

	doc, err := cl.Trace(0)
	if err != nil {
		t.Fatalf("TRACE: %v", err)
	}
	var d traceDump
	if err := json.Unmarshal(doc, &d); err != nil {
		t.Fatalf("TRACE dump not valid JSON: %v\n%s", err, doc)
	}
	if !d.Armed {
		t.Error("recorder not armed by default")
	}
	if len(d.Events) == 0 || d.Recorded == 0 {
		t.Fatalf("no events after load: recorded=%d events=%d", d.Recorded, len(d.Events))
	}
	valid := map[string]bool{
		"op": true, "decode": true, "lease_wait": true, "exec": true,
		"wal_gate": true, "fsync": true, "flush": true, "repl_apply": true,
	}
	kinds := map[string]int{}
	prevTS := int64(-1)
	for _, e := range d.Events {
		if !valid[e.Kind] {
			t.Fatalf("unknown event kind %q", e.Kind)
		}
		kinds[e.Kind]++
		if e.TS < prevTS {
			t.Fatalf("events not time-ordered: %d after %d", e.TS, prevTS)
		}
		prevTS = e.TS
		if e.Dur < 0 {
			t.Errorf("negative duration %d on %s", e.Dur, e.Kind)
		}
		if e.Kind == "op" && e.Op == "" {
			t.Errorf("op envelope without opcode name: %+v", e)
		}
	}
	for _, k := range []string{"op", "exec", "lease_wait"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events recorded under load (kinds: %v)", k, kinds)
		}
	}

	// The max bound truncates and says so.
	doc, err = cl.Trace(5)
	if err != nil {
		t.Fatalf("TRACE max=5: %v", err)
	}
	var bounded traceDump
	if err := json.Unmarshal(doc, &bounded); err != nil {
		t.Fatal(err)
	}
	if len(bounded.Events) > 5 {
		t.Errorf("TRACE max=5 returned %d events", len(bounded.Events))
	}
	if !bounded.Truncated {
		t.Error("bounded dump not marked truncated")
	}

	// Same document over the debug endpoint.
	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/trace?max=5")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/trace Content-Type = %q", ct)
	}
	var httpDump traceDump
	if err := json.NewDecoder(resp.Body).Decode(&httpDump); err != nil {
		t.Fatalf("/trace body: %v", err)
	}
	if len(httpDump.Events) > 5 {
		t.Errorf("/trace?max=5 returned %d events", len(httpDump.Events))
	}
}

// syncBuf is a mutex-guarded byte buffer: the slow-op log writes from
// serving goroutines while the test polls it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowOpLog arms the slow-op log with a 1ns threshold so every op
// trips it, and asserts the emitted line carries the op name and the
// phase breakdown.
func TestSlowOpLog(t *testing.T) {
	var buf syncBuf
	_, addr := startServer(t, Config{SlowOp: time.Nanosecond, SlowOpWriter: &buf})
	cl := dialT(t, addr)
	if err := cl.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, "tbtm slow op:") && strings.Contains(out, `op=set`) {
			if !strings.Contains(out, "dur=") || !strings.Contains(out, "exec=") {
				t.Fatalf("slow-op line missing phase breakdown:\n%s", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-op line with a 1ns threshold; log so far:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRecorderDisarmed pins the -flight-recorder=false path: no events
// accumulate, and the exposition says so.
func TestRecorderDisarmed(t *testing.T) {
	srv, addr := startServer(t, Config{RecorderOff: true})
	cl := dialT(t, addr)
	driveLoad(t, cl)
	if srv.Recorder().Recorded() != 0 {
		t.Errorf("disarmed recorder recorded %d events", srv.Recorder().Recorded())
	}
	var rb bytes.Buffer
	if err := srv.Registry().WritePrometheus(&rb); err != nil {
		t.Fatal(err)
	}
	s, err := telemetry.ParseScrape(bytes.NewReader(rb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("tbtmd_recorder_armed"); v != 0 {
		t.Errorf("tbtmd_recorder_armed = %v on a disarmed server", v)
	}
	doc, err := cl.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	var d traceDump
	if err := json.Unmarshal(doc, &d); err != nil {
		t.Fatal(err)
	}
	if d.Armed || len(d.Events) != 0 {
		t.Errorf("disarmed TRACE dump: armed=%v events=%d", d.Armed, len(d.Events))
	}
}
