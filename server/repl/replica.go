package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/telemetry"
	"tbtm/internal/wal"
	"tbtm/server/engine"
	"tbtm/server/wire"
)

// epochTick orders writes the way recovery does: epoch first, then the
// engine commit tick within the epoch.
type epochTick struct {
	epoch, tick uint64
}

// wins reports whether a write stamped a may overwrite state stamped
// b. Ties apply (>=): ops within one record share a stamp and apply in
// script order, and recovery resolves equal stamps the same way.
func (a epochTick) wins(b epochTick) bool {
	return a.epoch > b.epoch || (a.epoch == b.epoch && a.tick >= b.tick)
}

// ReplicaConfig configures a replication follower.
type ReplicaConfig struct {
	// Primary is the primary tbtmd's wire address.
	Primary string
	// Store is the replica's local store; the applier is its ONLY
	// writer (the serving side wraps it read-only, see ReadOnlyKV).
	Store *engine.Store
	// Thread is the applier's dedicated engine thread.
	Thread *tbtm.Thread
	// MaxFrame bounds stream frames (default wire.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// Backoff is the initial reconnect delay, doubling to 2s (default
	// 50ms).
	Backoff time.Duration
	// Ring is the applier's flight-recorder sink (nil disables): one
	// EvReplApply event per applied record, Seq = the WAL sequence.
	Ring *telemetry.Ring
}

// ReplStats is the replica section of the STATS document.
type ReplStats struct {
	Primary    string `json:"primary"`
	Connected  bool   `json:"connected"`
	PrimarySeq uint64 `json:"primary_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	Lag        uint64 `json:"lag"`
	Records    uint64 `json:"records_applied"`
	Bootstraps uint64 `json:"bootstraps"`
	Reconnects uint64 `json:"reconnects"`
}

// Replica follows a primary: it dials, subscribes with the last
// applied seq, applies checkpoint bootstraps atomically and records
// as ordinary engine transactions, and reconnects with backoff until
// stopped. All application happens on one goroutine owning cfg.Thread.
type Replica struct {
	cfg ReplicaConfig

	connected  atomic.Bool
	applied    atomic.Uint64
	primarySeq atomic.Uint64
	records    atomic.Uint64
	bootstraps atomic.Uint64
	reconnects atomic.Uint64

	// guard is the per-key (epoch, tick) LWW map: WAL seq order is not
	// per-key commit order, so every applied write is stamped and later
	// records lose per key when their stamp is older. Reset on
	// bootstrap (the checkpoint subsumes every stamp at or below its
	// covered seq; records above it always carry newer-or-equal ticks
	// per key than the snapshot they post-date).
	guard map[string]epochTick
	apply []bool // per-op winner flags, precomputed outside the tx body

	// Checkpoint under assembly between CkptBegin and CkptEnd.
	pending     map[string][]byte
	pendingUpTo uint64

	mu      sync.Mutex
	conn    net.Conn // current connection, closed by Stop to unblock reads
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// StartReplica begins following cfg.Primary. Stop ends it.
func StartReplica(cfg ReplicaConfig) *Replica {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	r := &Replica{
		cfg:   cfg,
		guard: make(map[string]epochTick),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.run()
	return r
}

// Stop disconnects and waits for the applier goroutine to exit.
func (r *Replica) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
		if r.conn != nil {
			r.conn.Close()
		}
	}
	r.mu.Unlock()
	<-r.done
}

// Stats snapshots the replication gauges. Lag is the primary's last
// announced seq minus the last applied one (0 when caught up; the
// primary's heartbeats keep it fresh while idle).
func (r *Replica) Stats() ReplStats {
	applied, primary := r.applied.Load(), r.primarySeq.Load()
	var lag uint64
	if primary > applied {
		lag = primary - applied
	}
	return ReplStats{
		Primary:    r.cfg.Primary,
		Connected:  r.connected.Load(),
		PrimarySeq: primary,
		AppliedSeq: applied,
		Lag:        lag,
		Records:    r.records.Load(),
		Bootstraps: r.bootstraps.Load(),
		Reconnects: r.reconnects.Load(),
	}
}

// BreakConnForTest severs the current upstream connection (if any),
// forcing the follower through its reconnect path. Test hook.
func (r *Replica) BreakConnForTest() {
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
}

// setConn publishes the live connection for Stop to close; a Stop that
// already ran closes it here instead.
func (r *Replica) setConn(c net.Conn) {
	r.mu.Lock()
	r.conn = c
	if r.stopped && c != nil {
		c.Close()
	}
	r.mu.Unlock()
}

// sleep waits d or until Stop; false means stopped.
func (r *Replica) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.stop:
		return false
	}
}

func (r *Replica) run() {
	defer close(r.done)
	backoff := r.cfg.Backoff
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", r.cfg.Primary, r.cfg.DialTimeout)
		if err != nil {
			r.reconnects.Add(1)
			if !r.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = r.cfg.Backoff
		r.setConn(c)
		_ = r.stream(c) // any error means reconnect; the loop is the retry
		r.setConn(nil)
		c.Close()
		r.connected.Store(false)
		select {
		case <-r.stop:
			return
		default:
		}
		r.reconnects.Add(1)
		if !r.sleep(backoff) {
			return
		}
	}
}

// stream subscribes on one connection and applies frames until it
// dies. The subscription asks for everything after the last APPLIED
// seq, so a mid-stream crash resumes exactly where application
// stopped — re-sent records a restarted replica already holds are
// rejected per key by the guard map anyway.
func (r *Replica) stream(c net.Conn) error {
	var hdr [4]byte
	body := binary.AppendUvarint(nil, 1) // one subscription per conn; seq 1
	body = append(body, byte(wire.OpReplicate))
	body = binary.AppendUvarint(body, r.applied.Load())
	if err := wire.WriteFrame(c, &hdr, body); err != nil {
		return err
	}
	r.connected.Store(true)

	br := bufio.NewReaderSize(c, 64<<10)
	var buf []byte
	for {
		payload, nbuf, err := wire.ReadFrame(br, &hdr, buf, r.cfg.MaxFrame)
		buf = nbuf
		if err != nil {
			return err
		}
		if err := r.applyFrame(payload); err != nil {
			return err
		}
	}
}

// applyFrame decodes and applies one stream frame.
func (r *Replica) applyFrame(payload []byte) error {
	_, p, err := wire.TakeUvarint(payload) // echoed subscription seq
	if err != nil {
		return err
	}
	st, p, err := wire.TakeByte(p)
	if err != nil {
		return err
	}
	switch wire.Status(st) {
	case wire.StatusOK:
	case wire.StatusClosed:
		return fmt.Errorf("repl: primary closed the stream")
	case wire.StatusError:
		msg, _, _ := wire.TakeBytes(p)
		return fmt.Errorf("repl: primary: %s", msg)
	default:
		return fmt.Errorf("repl: unexpected stream status %d", st)
	}
	kind, p, err := wire.TakeByte(p)
	if err != nil {
		return err
	}
	switch kind {
	case wire.ReplHello:
		ver, p2, err := wire.TakeUvarint(p)
		if err != nil {
			return err
		}
		if ver != wire.ReplVersion {
			return fmt.Errorf("repl: primary speaks stream version %d, want %d", ver, wire.ReplVersion)
		}
		last, _, err := wire.TakeUvarint(p2)
		if err != nil {
			return err
		}
		r.notePrimary(last)
	case wire.ReplCkptBegin:
		upTo, p2, err := wire.TakeUvarint(p)
		if err != nil {
			return err
		}
		count, _, err := wire.TakeUvarint(p2)
		if err != nil {
			return err
		}
		if count > uint64(len(p)) { // cheap sanity bound before allocating
			count = uint64(len(p))
		}
		r.pending = make(map[string][]byte, count)
		r.pendingUpTo = upTo
	case wire.ReplCkptPairs:
		if r.pending == nil {
			return fmt.Errorf("repl: checkpoint pairs outside a bootstrap")
		}
		n, p2, err := wire.TakeUvarint(p)
		if err != nil {
			return err
		}
		for j := uint64(0); j < n; j++ {
			var k, v []byte
			if k, p2, err = wire.TakeBytes(p2); err != nil {
				return err
			}
			if v, p2, err = wire.TakeBytes(p2); err != nil {
				return err
			}
			// The frame buffer is reused; stored pairs need copies.
			r.pending[string(k)] = engine.CopyBytes(v)
		}
	case wire.ReplCkptEnd:
		if r.pending == nil {
			return fmt.Errorf("repl: checkpoint end outside a bootstrap")
		}
		if err := r.applyBootstrap(); err != nil {
			return err
		}
	case wire.ReplRecords:
		epoch, p2, err := wire.TakeUvarint(p)
		if err != nil {
			return err
		}
		last, p2, err := wire.TakeUvarint(p2)
		if err != nil {
			return err
		}
		r.notePrimary(last)
		for len(p2) > 0 {
			rec, n, err := wal.DecodeRecord(p2)
			if err != nil {
				return err
			}
			if err := r.applyRecord(epoch, rec); err != nil {
				return err
			}
			p2 = p2[n:]
		}
	case wire.ReplHeartbeat:
		last, _, err := wire.TakeUvarint(p)
		if err != nil {
			return err
		}
		r.notePrimary(last)
	default:
		return fmt.Errorf("repl: unknown stream frame kind %d", kind)
	}
	return nil
}

// notePrimary advances the primary's announced seq (monotone: frames
// can carry a stale LastAssignedSeq read taken before a later frame's).
func (r *Replica) notePrimary(seq uint64) {
	if seq > r.primarySeq.Load() {
		r.primarySeq.Store(seq) // applier goroutine is the only writer
	}
}

// applyBootstrap replaces the replica's state with the assembled
// checkpoint in ONE long transaction — a reader's RANGE snapshot sees
// wholly old or wholly new state, never a mix. The guard map resets:
// the checkpoint subsumes every write at or below its covered seq, and
// records above it post-date the snapshot per key.
func (r *Replica) applyBootstrap() error {
	pending, upTo := r.pending, r.pendingUpTo
	r.pending = nil
	// The applier is the store's only writer, so this pre-transaction
	// snapshot of the key set is still current inside the transaction.
	cur, err := r.cfg.Store.RangeScan(r.cfg.Thread, "", "", 0)
	if err != nil {
		return err
	}
	err = r.cfg.Thread.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
		for i := range cur {
			if _, ok := pending[cur[i].Key]; !ok {
				if _, e := r.cfg.Store.DelTx(tx, cur[i].Key); e != nil {
					return e
				}
			}
		}
		for k, v := range pending {
			if e := r.cfg.Store.SetTx(tx, k, v); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	r.guard = make(map[string]epochTick, len(pending))
	r.applied.Store(upTo)
	r.notePrimary(upTo)
	r.bootstraps.Add(1)
	return nil
}

// applyRecord applies one shipped record as one engine transaction.
// Winner flags are precomputed against the guard map so the retryable
// transaction body only reads them; the guard updates after commit.
func (r *Replica) applyRecord(epoch uint64, rec wal.Record) error {
	if rec.Seq <= r.applied.Load() {
		return nil // overlap after a resubscribe; already applied
	}
	t0 := r.cfg.Ring.Now()
	et := epochTick{epoch: epoch, tick: rec.Tick}
	r.apply = r.apply[:0]
	any := false
	for i := range rec.Ops {
		win := et.wins(r.guard[rec.Ops[i].Key])
		r.apply = append(r.apply, win)
		any = any || win
	}
	if any {
		st := r.cfg.Store
		err := r.cfg.Thread.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			for i := range rec.Ops {
				if !r.apply[i] {
					continue
				}
				op := &rec.Ops[i]
				if op.Del {
					if _, e := st.DelTx(tx, op.Key); e != nil {
						return e
					}
				} else if e := st.SetTx(tx, op.Key, op.Val); e != nil {
					return e
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		for i := range rec.Ops {
			if r.apply[i] {
				r.guard[rec.Ops[i].Key] = et
			}
		}
	}
	r.records.Add(1)
	r.applied.Store(rec.Seq)
	r.cfg.Ring.Span(telemetry.EvReplApply, 0, 0, rec.Seq, uint32(len(rec.Ops)), t0)
	return nil
}
