package repl

import (
	"tbtm"
	"tbtm/server/engine"
)

// ReadOnlyKV is the serving face of a replica's store: reads pass
// through (each is one consistent snapshot of whatever the applier has
// committed), writes and BTAKE answer engine.ErrReplicaRead — which the
// transport encodes as StatusReadOnly with the replica reason byte, so
// clients can tell "write to the primary" from a primary's own WAL
// degradation. WAIT works: a replica is a fine place to watch a key
// change, the applier's commits wake parked watchers like any other
// transaction.
type ReadOnlyKV struct {
	s *engine.Store
}

// NewReadOnlyKV wraps the replica's store for serving.
func NewReadOnlyKV(s *engine.Store) *ReadOnlyKV { return &ReadOnlyKV{s: s} }

func (r *ReadOnlyKV) Get(th *tbtm.Thread, key string) ([]byte, bool, error) {
	return r.s.Get(th, key)
}

func (r *ReadOnlyKV) Set(th *tbtm.Thread, key string, val []byte) error {
	return engine.ErrReplicaRead
}

func (r *ReadOnlyKV) Del(th *tbtm.Thread, key string) (bool, error) {
	return false, engine.ErrReplicaRead
}

func (r *ReadOnlyKV) Cas(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (bool, error) {
	return false, engine.ErrReplicaRead
}

func (r *ReadOnlyKV) RangeScan(th *tbtm.Thread, from, to string, limit int) ([]engine.Pair, error) {
	return r.s.RangeScan(th, from, to, limit)
}

// Multi runs all-read scripts (a consistent multi-key snapshot is
// exactly what replicas are for); any writing sub-op refuses whole.
func (r *ReadOnlyKV) Multi(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) (bool, error) {
	if !engine.ReadOnlySubs(subs) {
		return false, engine.ErrReplicaRead
	}
	return r.s.Multi(th, subs, results)
}

// ExecBatch refuses (it is only chosen when the batch writes); the
// transport's solo re-run then answers each op individually — reads
// succeed, writes get their read-only status.
func (r *ReadOnlyKV) ExecBatch(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) error {
	return engine.ErrReplicaRead
}

func (r *ReadOnlyKV) ExecBatchRO(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) error {
	return r.s.ExecBatchRO(th, subs, results)
}

func (r *ReadOnlyKV) ExecOne(th *tbtm.Thread, sub *engine.MultiSub) (engine.SubResult, error) {
	return engine.ExecOneOn(r, th, sub)
}

// BTake refuses: consuming a key on a replica would diverge from the
// primary.
func (r *ReadOnlyKV) BTake(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) ([]byte, error) {
	return nil, engine.ErrReplicaRead
}

func (r *ReadOnlyKV) Wait(th *tbtm.Thread, key string, oldPresent bool, old []byte, cancel *tbtm.Var[bool]) ([]byte, bool, error) {
	return r.s.Wait(th, key, oldPresent, old, cancel)
}

func (r *ReadOnlyKV) MarkClosed(th *tbtm.Thread) error {
	return r.s.MarkClosed(th)
}
