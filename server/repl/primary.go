// Package repl ships the primary's write-ahead log to read replicas
// and applies it on the replica side.
//
// The stream a primary serves is self-synchronizing: a follower
// subscribes with the last sequence number it has applied, and the
// primary answers with whichever of two shapes covers the gap —
//
//   - a CHECKPOINT BOOTSTRAP (CkptBegin / CkptPairs… / CkptEnd) when
//     the follower's position has been pruned: the newest on-disk
//     checkpoint's pairs, after which the follower atomically replaces
//     its state and continues from the checkpoint's covered seq;
//
//   - a RECORD TAIL (ReplRecords frames carrying raw WAL bytes) when
//     the records past the follower's position still exist, via the
//     WAL's live-tail API (file phase for the backlog, then batches as
//     the group-commit batcher writes them).
//
// Records are shipped in WAL sequence order, which is NOT per-key
// commit order: two transactions can hold the commit→append window
// concurrently and be assigned sequence numbers opposite to their
// engine commit ticks. The replica therefore resolves writes per key
// by (epoch, commit tick), exactly as crash recovery does — seq is
// only the transport cursor, tick is the truth. The same rule makes
// checkpoint hand-off exact: every record with seq > the checkpoint's
// covered seq committed entirely after the checkpoint gate's write
// instant, so "checkpoint + records above its seq, resolved by
// (epoch, tick)" reconstructs the primary's state with no gap and no
// double-apply ambiguity.
package repl

import (
	"encoding/binary"
	"errors"
	"time"

	"tbtm/internal/wal"
	"tbtm/server/wire"
)

// Stream is the frame writer a primary pushes the replication stream
// through; server/transport's Stream implements it. Begin starts a
// frame body (the subscription's sequence ID pre-applied), Flush
// frames and writes it, Stop is closed when the connection dies.
type Stream interface {
	Begin() []byte
	Flush(body []byte) error
	Stop() <-chan struct{}
}

// maxShipPayload bounds one stream frame's record / checkpoint-pair
// payload, comfortably under any sane frame limit. Chunks split at
// record boundaries; a single record larger than this ships alone.
const maxShipPayload = 256 << 10

// heartbeatEvery is the idle-stream heartbeat period: often enough
// that a replica's lag gauge is fresh, rare enough to be free.
const heartbeatEvery = 500 * time.Millisecond

// errStopped reports the connection died under the stream.
var errStopped = errors.New("repl: stream stopped")

// ServePrimary serves one replication subscription over st: hello,
// then checkpoint bootstrap and/or record tail as the follower's
// position requires, until the stream or the log dies. The returned
// error becomes the stream's terminal status frame.
func ServePrimary(l *wal.Log, st Stream, afterSeq uint64) error {
	b := st.Begin()
	b = append(b, byte(wire.StatusOK), wire.ReplHello)
	b = binary.AppendUvarint(b, wire.ReplVersion)
	b = binary.AppendUvarint(b, l.LastAssignedSeq())
	if err := st.Flush(b); err != nil {
		return err
	}

	pos := afterSeq
	for {
		if pos < l.CheckpointSeq() {
			upTo, err := shipCheckpoint(l, st)
			if err != nil {
				return err
			}
			if upTo > pos {
				pos = upTo
			}
		}
		f, err := l.Follow(pos)
		if errors.Is(err, wal.ErrPruned) {
			continue // a checkpoint advanced past pos since we checked; bootstrap
		}
		if err != nil {
			return err
		}
		pos, err = pump(l, st, f, pos)
		f.Close()
		if errors.Is(err, wal.ErrPruned) {
			continue // pruned mid-tail; re-bootstrap from the new checkpoint
		}
		return err
	}
}

// shipCheckpoint sends the newest checkpoint as a bracketed pair
// stream and returns the seq it covers. A concurrent prune retries
// inside ReadCheckpoint; no checkpoint at all returns 0 (the caller
// falls through to tailing records from wherever it stands).
func shipCheckpoint(l *wal.Log, st Stream) (uint64, error) {
	pairs, upTo, err := l.ReadCheckpoint()
	if err != nil {
		return 0, err
	}
	if upTo == 0 {
		return 0, nil
	}
	b := st.Begin()
	b = append(b, byte(wire.StatusOK), wire.ReplCkptBegin)
	b = binary.AppendUvarint(b, upTo)
	b = binary.AppendUvarint(b, uint64(len(pairs)))
	if err := st.Flush(b); err != nil {
		return 0, err
	}

	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	var body []byte
	for i := 0; i < len(keys); {
		// The pair count prefixes the chunk, so pairs accumulate in a
		// side buffer first (at least one pair per chunk, however big).
		body = body[:0]
		n := 0
		for i < len(keys) && (n == 0 || len(body) < maxShipPayload) {
			k := keys[i]
			body = wire.AppendString(body, k)
			body = wire.AppendBytes(body, pairs[k])
			n++
			i++
		}
		b = st.Begin()
		b = append(b, byte(wire.StatusOK), wire.ReplCkptPairs)
		b = binary.AppendUvarint(b, uint64(n))
		b = append(b, body...)
		if err := st.Flush(b); err != nil {
			return 0, err
		}
	}

	b = st.Begin()
	b = append(b, byte(wire.StatusOK), wire.ReplCkptEnd)
	b = binary.AppendUvarint(b, upTo)
	return upTo, st.Flush(b)
}

// pump streams chunks from the follower until the stream, the log, or
// the follower's position dies, returning the last shipped seq. A
// helper goroutine blocks in Recv so this loop can also service the
// heartbeat ticker and the stream's stop channel; chunk buffers are
// stable once handed over (batch buffers are immutable after write,
// file-phase reads are fresh allocations), so the overlap between
// shipping chunk N and receiving N+1 is safe.
func pump(l *wal.Log, st Stream, f *wal.Follower, pos uint64) (uint64, error) {
	chunks := make(chan wal.Chunk)
	errc := make(chan error, 1)
	rstop := make(chan struct{})
	done := make(chan struct{})
	// Join the receiver before returning: the caller Closes the
	// follower as soon as pump is back, and Follower is single-caller —
	// a Recv still in flight would race the Close.
	defer func() { close(rstop); <-done }()
	go func() {
		defer close(done)
		for {
			c, err := f.Recv(rstop)
			if err != nil {
				errc <- err
				return
			}
			select {
			case chunks <- c:
			case <-rstop:
				return
			}
		}
	}()

	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case c := <-chunks:
			if err := shipChunk(l, st, c); err != nil {
				return pos, err
			}
			pos = c.Last
		case err := <-errc:
			return pos, err
		case <-hb.C:
			b := st.Begin()
			b = append(b, byte(wire.StatusOK), wire.ReplHeartbeat)
			b = binary.AppendUvarint(b, l.LastAssignedSeq())
			if err := st.Flush(b); err != nil {
				return pos, err
			}
		case <-st.Stop():
			return pos, errStopped
		}
	}
}

// shipChunk frames one chunk's raw record bytes, split at record
// boundaries into frames of at most maxShipPayload (a single larger
// record ships alone — records cannot be split).
func shipChunk(l *wal.Log, st Stream, c wal.Chunk) error {
	raw := c.Bytes
	for len(raw) > 0 {
		end := 0
		for end < len(raw) && end < maxShipPayload {
			_, n, err := wal.ScanRecord(raw[end:])
			if err != nil {
				return err // shipped bytes must be whole records
			}
			end += n
		}
		b := st.Begin()
		b = append(b, byte(wire.StatusOK), wire.ReplRecords)
		b = binary.AppendUvarint(b, c.Epoch)
		b = binary.AppendUvarint(b, l.LastAssignedSeq())
		b = append(b, raw[:end]...)
		if err := st.Flush(b); err != nil {
			return err
		}
		raw = raw[end:]
	}
	return nil
}
