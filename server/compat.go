package server

import (
	"tbtm/server/engine"
	"tbtm/server/wire"
)

// Re-exports: the protocol and engine layers moved into server/wire and
// server/engine (see the package comment); the names below keep the
// root package's public surface — and the client, which speaks the wire
// types directly — stable across the split.

// Op is the request opcode (see server/wire).
type Op = wire.Op

// Status is the response status byte (see server/wire).
type Status = wire.Status

const (
	OpPing      = wire.OpPing
	OpGet       = wire.OpGet
	OpSet       = wire.OpSet
	OpDel       = wire.OpDel
	OpCas       = wire.OpCas
	OpRange     = wire.OpRange
	OpMulti     = wire.OpMulti
	OpBTake     = wire.OpBTake
	OpWait      = wire.OpWait
	OpStats     = wire.OpStats
	OpReplicate = wire.OpReplicate
	OpTrace     = wire.OpTrace
	OpMax       = wire.OpMax

	// ReadOnly reason bytes (follow StatusReadOnly on the wire).
	ReadOnlyWAL     = wire.ReadOnlyWAL
	ReadOnlyReplica = wire.ReadOnlyReplica

	StatusOK       = wire.StatusOK
	StatusNotFound = wire.StatusNotFound
	StatusError    = wire.StatusError
	StatusClosed   = wire.StatusClosed
	StatusReadOnly = wire.StatusReadOnly
)

// DefaultMaxFrame bounds the payload size both sides will read.
const DefaultMaxFrame = wire.DefaultMaxFrame

// Framing errors.
var (
	ErrFrameTooLarge = wire.ErrFrameTooLarge
	errTruncated     = wire.ErrTruncated
)

// Lifecycle and refusal errors (see server/engine).
var (
	ErrServerClosed = engine.ErrServerClosed
	ErrClientGone   = engine.ErrClientGone
	// ErrReadOnlyMode: a durable primary degraded to read-only after a
	// WAL failure (fail-stop for writes; reads keep serving).
	ErrReadOnlyMode = engine.ErrReadOnly
	// ErrReplicaRead: the server is a read replica; writes must go to
	// the primary. Distinct from ErrReadOnlyMode so clients can fail
	// over instead of alerting.
	ErrReplicaRead = engine.ErrReplicaRead
)

// Executor, its metrics, and their JSON faces (see server/engine).
type (
	Executor        = engine.Executor
	Lease           = engine.Lease
	Metrics         = engine.Metrics
	MetricsSnapshot = engine.MetricsSnapshot
	OpCounters      = engine.OpCounters
	ExecutorStats   = engine.ExecutorStats
)

// NewExecutor builds a Thread-leasing executor (see server/engine).
var NewExecutor = engine.NewExecutor

// Wire helpers the client shares with the server side.
var (
	writeFrame   = wire.WriteFrame
	readFrame    = wire.ReadFrame
	appendBytes  = wire.AppendBytes
	appendString = wire.AppendString
	takeBytes    = wire.TakeBytes
	takeUvarint  = wire.TakeUvarint
	takeByte     = wire.TakeByte
)

//tbtm:noalloc
func boolByte(b bool) byte { return wire.BoolByte(b) }
