package server

import (
	"testing"

	"tbtm"
)

// The server-side allocation contract. The engine's warm paths are
// zero-alloc (root alloc_test.go); the server must not squander that
// between the socket and the store. Three properties pin it:
//
//  1. Site strings are package constants, so AtomicSite's classifier
//     lookup never allocates a key — building "set:"+key per request
//     would regress this pin.
//  2. The executor's Acquire/Do/Release cycle is channel+atomics only.
//  3. A warm single-key read through executor + classifier + store
//     allocates NOTHING on LSA; a warm overwrite allocates only what
//     genuinely escapes (the copied bucket slice and its interface
//     box), independent of request count.
//
// The conn layer's remaining per-request conversion — wire key bytes to
// the map's string key — is covered by the single-entry cache pinned in
// TestKeyStringCacheAllocs.
const (
	maxAllocsWarmGet = 0
	// The overwrite path rebuilds the bucket's []mapEntry slice (one
	// alloc) and boxes it into the Object's `any` slot (a second); the
	// skiplist index is untouched when the key already exists.
	maxAllocsWarmSet = 2
)

func TestWarmServerOpAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 2, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Executor()
	val := []byte("payload")

	// Prebound closures, as the conn handler holds them.
	setFn := func(th *tbtm.Thread) error {
		return srv.store.set(th, "hot", val)
	}
	getFn := func(th *tbtm.Thread) error {
		_, _, err := srv.store.get(th, "hot")
		return err
	}
	doSet := func() {
		if err := e.Do(nil, OpSet, false, setFn); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	doGet := func() {
		if err := e.Do(nil, OpGet, false, getFn); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	for i := 0; i < 64; i++ { // warm descriptors, pools, classifier site
		doSet()
		doGet()
	}
	if n := testing.AllocsPerRun(200, doGet); n > maxAllocsWarmGet {
		t.Errorf("warm server GET: %.1f allocs/op, want <= %d", n, maxAllocsWarmGet)
	}
	if n := testing.AllocsPerRun(200, doSet); n > maxAllocsWarmSet {
		t.Errorf("warm server SET: %.1f allocs/op, want <= %d", n, maxAllocsWarmSet)
	}
}

// TestWarmBlockingOpAllocs pins the non-parking fast path of the
// blocking opcodes: a WAIT whose expectation is already stale answers
// without parking and without allocating (LSA, warm).
func TestWarmBlockingOpAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 1, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Executor()
	if err := e.Do(nil, OpSet, false, func(th *tbtm.Thread) error {
		return srv.store.set(th, "w", []byte("current"))
	}); err != nil {
		t.Fatal(err)
	}
	old := []byte("stale")
	waitFn := func(th *tbtm.Thread) error {
		_, _, err := srv.store.wait(th, "w", true, old, nil)
		return err
	}
	doWait := func() {
		if err := e.Do(nil, OpWait, true, waitFn); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		doWait()
	}
	if n := testing.AllocsPerRun(200, doWait); n > 0 {
		t.Errorf("warm non-parking WAIT: %.1f allocs/op, want 0", n)
	}
}

// TestKeyStringCacheAllocs pins the conn layer's single-entry key
// cache: a client hammering one key converts the wire bytes to the
// store's string key once per key change, not once per request.
func TestKeyStringCacheAllocs(t *testing.T) {
	cn := &conn{}
	wire := []byte("hot-key")
	if got := cn.keyString(wire); got != "hot-key" {
		t.Fatalf("keyString = %q", got)
	}
	if n := testing.AllocsPerRun(200, func() {
		if cn.keyString(wire) != "hot-key" {
			t.Fatal("cache miss on identical key")
		}
	}); n > 0 {
		t.Errorf("cached keyString: %.1f allocs/op, want 0", n)
	}
	// A different key replaces the cache entry and still works.
	if got := cn.keyString([]byte("other")); got != "other" {
		t.Fatalf("keyString after change = %q", got)
	}
}
