package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"tbtm"
)

// The server-side allocation contract. The engine's warm paths are
// zero-alloc (root alloc_test.go); the server must not squander that
// between the socket and the store. Three properties pin it:
//
//  1. Site strings are package constants, so AtomicSite's classifier
//     lookup never allocates a key — building "set:"+key per request
//     would regress this pin.
//  2. The executor's Acquire/Do/Release cycle is channel+atomics only.
//  3. A warm single-key read through executor + classifier + store
//     allocates NOTHING on LSA; a warm overwrite allocates only what
//     genuinely escapes (the copied bucket slice and its interface
//     box), independent of request count.
//
// The conn layer's remaining per-request conversion — wire key bytes to
// the map's string key — is covered by the direct-mapped cache pinned
// in TestKeyStringCacheAllocs, and the pipelined decode→batch→execute→
// encode cycle by TestWarmPipelinedBurstAllocs.
const (
	maxAllocsWarmGet = 0
	// The overwrite path rebuilds the bucket's []mapEntry slice (one
	// alloc) and boxes it into the Object's `any` slot (a second); the
	// skiplist index is untouched when the key already exists.
	maxAllocsWarmSet = 2
)

func TestWarmServerOpAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 2, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Executor()
	val := []byte("payload")

	// Prebound closures, as the conn handler holds them.
	setFn := func(th *tbtm.Thread) error {
		return srv.store.set(th, "hot", val)
	}
	getFn := func(th *tbtm.Thread) error {
		_, _, err := srv.store.get(th, "hot")
		return err
	}
	doSet := func() {
		if err := e.Do(nil, OpSet, false, setFn); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	doGet := func() {
		if err := e.Do(nil, OpGet, false, getFn); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	for i := 0; i < 64; i++ { // warm descriptors, pools, classifier site
		doSet()
		doGet()
	}
	if n := testing.AllocsPerRun(200, doGet); n > maxAllocsWarmGet {
		t.Errorf("warm server GET: %.1f allocs/op, want <= %d", n, maxAllocsWarmGet)
	}
	if n := testing.AllocsPerRun(200, doSet); n > maxAllocsWarmSet {
		t.Errorf("warm server SET: %.1f allocs/op, want <= %d", n, maxAllocsWarmSet)
	}
}

// TestWarmBlockingOpAllocs pins the non-parking fast path of the
// blocking opcodes: a WAIT whose expectation is already stale answers
// without parking and without allocating (LSA, warm).
func TestWarmBlockingOpAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 1, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := srv.Executor()
	if err := e.Do(nil, OpSet, false, func(th *tbtm.Thread) error {
		return srv.store.set(th, "w", []byte("current"))
	}); err != nil {
		t.Fatal(err)
	}
	old := []byte("stale")
	waitFn := func(th *tbtm.Thread) error {
		_, _, err := srv.store.wait(th, "w", true, old, nil)
		return err
	}
	doWait := func() {
		if err := e.Do(nil, OpWait, true, waitFn); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		doWait()
	}
	if n := testing.AllocsPerRun(200, doWait); n > 0 {
		t.Errorf("warm non-parking WAIT: %.1f allocs/op, want 0", n)
	}
}

// TestKeyStringCacheAllocs pins the conn layer's direct-mapped key
// cache: a client hammering a small working set of keys converts the
// wire bytes to the store's string key once per key, not once per
// request — a pipelined burst touches several keys, so the cache must
// hold more than one.
func TestKeyStringCacheAllocs(t *testing.T) {
	cn := &pconn{}
	wire := []byte("hot-key")
	if got := cn.keyString(wire); got != "hot-key" {
		t.Fatalf("keyString = %q", got)
	}
	if n := testing.AllocsPerRun(200, func() {
		if cn.keyString(wire) != "hot-key" {
			t.Fatal("cache miss on identical key")
		}
	}); n > 0 {
		t.Errorf("cached keyString: %.1f allocs/op, want 0", n)
	}
	// A working set of keys in DISTINCT slots stays cached as a whole:
	// no key evicts another, so a warm multi-key burst converts nothing.
	keys := distinctSlotKeys(t, 4)
	for _, k := range keys {
		if got := cn.keyString([]byte(k)); got != k {
			t.Fatalf("keyString(%q) = %q", k, got)
		}
	}
	wires := make([][]byte, len(keys))
	for i, k := range keys {
		wires[i] = []byte(k)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i, w := range wires {
			if cn.keyString(w) != keys[i] {
				t.Fatal("cache miss on resident key")
			}
		}
	}); n > 0 {
		t.Errorf("cached multi-key keyString: %.1f allocs/op, want 0", n)
	}
	// A colliding key replaces its slot's entry and still works.
	if got := cn.keyString([]byte("other")); got != "other" {
		t.Fatalf("keyString after change = %q", got)
	}
}

// distinctSlotKeys generates n keys mapping to pairwise distinct cache
// slots, so a test working set cannot self-evict.
func distinctSlotKeys(t *testing.T, n int) []string {
	t.Helper()
	used := make(map[int]bool)
	var keys []string
	for i := 0; len(keys) < n && i < 256; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s := keySlot([]byte(k)); !used[s] {
			used[s] = true
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d distinct-slot keys", n)
	}
	return keys
}

// TestWarmPipelinedBurstAllocs pins the whole pipelined fast path: a
// warm burst of 16 GETs — decode, batch accumulation, one shared
// lease, one read-only transaction, response encode, coalesced flush —
// amortizes to at most 1 alloc per op.
func TestWarmPipelinedBurstAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 2, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := distinctSlotKeys(t, 4)
	for _, k := range keys {
		if err := srv.exec.Do(nil, OpSet, false, func(th *tbtm.Thread) error {
			return srv.store.set(th, k, []byte("payload"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	cn := newPconn(srv, nil)
	cn.w = io.Discard

	// Prebuild a 16-GET burst over the resident working set.
	const burstOps = 16
	var burst []byte
	var payload []byte
	for i := 0; i < burstOps; i++ {
		payload = binary.AppendUvarint(payload[:0], uint64(i+1))
		payload = append(payload, byte(OpGet))
		payload = appendString(payload, keys[i%len(keys)])
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		burst = append(burst, hdr[:]...)
		burst = append(burst, payload...)
	}
	doBurst := func() {
		cn.in = append(cn.in[:0], burst...)
		cn.inoff = 0
		if err := cn.processBurst(); err != nil {
			t.Fatalf("burst: %v", err)
		}
	}
	for i := 0; i < 64; i++ { // warm buffers, cache, descriptors
		doBurst()
	}
	if n := testing.AllocsPerRun(200, doBurst); n > burstOps {
		t.Errorf("warm pipelined 16-GET burst: %.1f allocs (%.2f/op), want <= 1/op",
			n, n/burstOps)
	}
}

// TestResponseWriterFlushAllocs pins the coalescing writer: queueing a
// warm response frame and flushing the wire allocates nothing.
func TestResponseWriterFlushAllocs(t *testing.T) {
	srv, err := New(Config{Consistency: tbtm.Linearizable, Leases: 1, BlockingLeases: 1})
	if err != nil {
		t.Fatal(err)
	}
	cn := newPconn(srv, nil)
	cn.w = io.Discard
	cycle := func() {
		b := cn.beginResp(42)
		b = append(b, byte(StatusOK))
		b = appendBytes(b, []byte("response-payload"))
		cn.queueResp(b)
		if err := cn.flushWire(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n > 0 {
		t.Errorf("response queue+flush: %.1f allocs/op, want 0", n)
	}
}
