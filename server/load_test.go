package server

import (
	"testing"
	"time"
)

// TestLatHistQuantile sanity-checks the log-linear histogram: known
// durations land in the right quantiles within bucket resolution.
func TestLatHistQuantile(t *testing.T) {
	var h latHist
	// 99 ops at ~100µs, 1 op at ~10ms.
	for i := 0; i < 99; i++ {
		h.record(100 * time.Microsecond)
	}
	h.record(10 * time.Millisecond)
	p50 := h.quantile(0.50)
	if p50 < 64 || p50 > 160 {
		t.Errorf("p50 = %.0fµs, want ~100µs (within bucket resolution)", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 8192 || p99 > 16384 {
		t.Errorf("p99 = %.0fµs, want ~10000µs (within bucket resolution)", p99)
	}
	if h.quantile(0.0) > p50 || p50 > h.quantile(1.0) {
		t.Error("quantiles not monotone")
	}
}

// TestRunLoadPipelined runs the load generator end to end in its
// pipelined+batched mode against a live server and checks the result
// invariants: ops flowed, none errored, the engine really committed,
// batches formed, and latency percentiles are populated.
func TestRunLoadPipelined(t *testing.T) {
	srv, addr := startServer(t, Config{})
	res, err := RunLoad(LoadConfig{
		Addr:      addr,
		Conns:     2,
		Duration:  300 * time.Millisecond,
		Keys:      64,
		ReadRatio: 0.8,
		Pipeline:  16,
		Batch:     true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("pipelined load did zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("pipelined load: %d errors", res.Errors)
	}
	if res.EngineCommits == 0 {
		t.Fatal("no engine commits observed over the window")
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us {
		t.Fatalf("latency percentiles p50=%v p99=%v", res.P50Us, res.P99Us)
	}
	if got := srv.exec.Metrics().BatchCount(); got == 0 {
		t.Fatal("no server-side batches formed under pipelined+batched load")
	}
}
