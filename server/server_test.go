package server

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtm"
)

// startServer builds and serves a test instance on a loopback port.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServerBasicOps(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)

	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, ok, err := cl.Get("a"); err != nil || ok {
		t.Fatalf("get missing: ok=%v err=%v", ok, err)
	}
	if err := cl.Set("a", []byte("1")); err != nil {
		t.Fatalf("set: %v", err)
	}
	v, ok, err := cl.Get("a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q ok=%v err=%v", v, ok, err)
	}

	// CAS: wrong expectation fails, right one swaps, create-if-absent.
	if sw, err := cl.Cas("a", []byte("0"), true, []byte("2")); err != nil || sw {
		t.Fatalf("cas wrong expect: swapped=%v err=%v", sw, err)
	}
	if sw, err := cl.Cas("a", []byte("1"), true, []byte("2")); err != nil || !sw {
		t.Fatalf("cas: swapped=%v err=%v", sw, err)
	}
	if sw, err := cl.Cas("b", nil, false, []byte("9")); err != nil || !sw {
		t.Fatalf("cas create-if-absent: swapped=%v err=%v", sw, err)
	}
	if sw, err := cl.Cas("b", nil, false, []byte("9")); err != nil || sw {
		t.Fatalf("cas create on present key: swapped=%v err=%v", sw, err)
	}

	// DEL.
	if del, err := cl.Del("b"); err != nil || !del {
		t.Fatalf("del: deleted=%v err=%v", del, err)
	}
	if del, err := cl.Del("b"); err != nil || del {
		t.Fatalf("del again: deleted=%v err=%v", del, err)
	}

	// RANGE over the skiplist index: ordered, bounded, limited.
	for i := 0; i < 10; i++ {
		if err := cl.Set(fmt.Sprintf("r%02d", i), []byte{byte('0' + i)}); err != nil {
			t.Fatalf("set r%d: %v", i, err)
		}
	}
	pairs, err := cl.Range("r00", "r05", 0)
	if err != nil {
		t.Fatalf("range: %v", err)
	}
	if len(pairs) != 5 {
		t.Fatalf("range [r00,r05): %d pairs, want 5", len(pairs))
	}
	for i, p := range pairs {
		want := fmt.Sprintf("r%02d", i)
		if p.Key != want || len(p.Val) != 1 {
			t.Fatalf("range pair %d = %q/%q, want key %q", i, p.Key, p.Val, want)
		}
	}
	pairs, err = cl.Range("r05", "", 3)
	if err != nil || len(pairs) != 3 || pairs[0].Key != "r05" {
		t.Fatalf("range limit: %v pairs=%v", err, pairs)
	}

	// STATS round-trips and reflects the traffic.
	reply, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if reply.Engine.Commits == 0 {
		t.Errorf("stats: zero engine commits after updates")
	}
	if reply.Metrics.Ops["set"].Count == 0 || reply.Metrics.Ops["get"].Count == 0 {
		t.Errorf("stats: op metrics not recorded: %+v", reply.Metrics.Ops)
	}
	if reply.Metrics.Executor.Acquires == 0 {
		t.Errorf("stats: executor acquires not recorded")
	}
}

func TestServerMultiExecObservesOwnWrites(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	res, committed, err := cl.MultiExec([]MultiOp{
		MSet("x", []byte("v1")),
		MGet("x"),
		MDel("x"),
		MGet("x"),
	})
	if err != nil || !committed {
		t.Fatalf("multi: committed=%v err=%v", committed, err)
	}
	if !res[1].OK || string(res[1].Val) != "v1" {
		t.Fatalf("script read of own write = %+v", res[1])
	}
	if !res[2].OK {
		t.Fatalf("script delete of own write = %+v", res[2])
	}
	if res[3].OK {
		t.Fatalf("script read after own delete = %+v", res[3])
	}
}

func TestServerMultiCasAbortsWholeScript(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	if err := cl.Set("guard", []byte("old")); err != nil {
		t.Fatal(err)
	}
	res, committed, err := cl.MultiExec([]MultiOp{
		MSet("side", []byte("effect")),
		MCas("guard", []byte("WRONG"), true, []byte("new")),
	})
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if committed {
		t.Fatalf("script with failed CAS reported committed")
	}
	if len(res) != 2 || res[1].OK {
		t.Fatalf("results = %+v, want failed CAS last", res)
	}
	// The rollback must cover the earlier SET.
	if _, ok, _ := cl.Get("side"); ok {
		t.Fatalf("aborted script leaked a write")
	}
	if v, _, _ := cl.Get("guard"); string(v) != "old" {
		t.Fatalf("aborted script changed the guarded key: %q", v)
	}
}

// multiBackends are the criteria the acceptance workload must cover.
var multiBackends = []struct {
	name string
	c    tbtm.Consistency
}{
	{"lsa", tbtm.Linearizable},
	{"sstm", tbtm.Serializable},
	{"zstm", tbtm.ZLinearizable},
}

// TestServerMultiAtomicAcrossBackends drives concurrent paired-counter
// increments through MULTI(CAS,CAS) scripts while snapshot readers
// verify the pair invariant — scripts must commit atomically or not at
// all, on LSA and S-STM alike.
func TestServerMultiAtomicAcrossBackends(t *testing.T) {
	for _, b := range multiBackends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			_, addr := startServer(t, Config{Consistency: b.c, Leases: 4, BlockingLeases: 4})
			seed := dialT(t, addr)
			const pairs = 4
			for i := 0; i < pairs; i++ {
				if _, _, err := seed.MultiExec([]MultiOp{
					MSet("c"+strconv.Itoa(i), []byte("0")),
					MSet("m"+strconv.Itoa(i), []byte("0")),
				}); err != nil {
					t.Fatalf("seed: %v", err)
				}
			}

			writers := 3
			iters := 40
			if testing.Short() {
				iters = 12
			}
			var wgW, wgR sync.WaitGroup
			errs := make(chan error, writers+1)
			for w := 0; w < writers; w++ {
				wgW.Add(1)
				go func(w int) {
					defer wgW.Done()
					cl, err := Dial(addr)
					if err != nil {
						errs <- err
						return
					}
					defer cl.Close()
					for i := 0; i < iters; i++ {
						k := strconv.Itoa((w + i) % pairs)
						for {
							// Read both counters, then CAS both up by one in
							// ONE script: atomic or nothing.
							res, committed, err := cl.MultiExec([]MultiOp{
								MGet("c" + k), MGet("m" + k),
							})
							if err != nil || !committed {
								errs <- fmt.Errorf("read script: committed=%v err=%v", committed, err)
								return
							}
							cv, _ := strconv.Atoi(string(res[0].Val))
							mv, _ := strconv.Atoi(string(res[1].Val))
							if cv != mv {
								errs <- fmt.Errorf("torn read: c%s=%d m%s=%d", k, cv, k, mv)
								return
							}
							next := []byte(strconv.Itoa(cv + 1))
							_, committed, err = cl.MultiExec([]MultiOp{
								MCas("c"+k, res[0].Val, true, next),
								MCas("m"+k, res[1].Val, true, next),
							})
							if err != nil {
								errs <- fmt.Errorf("cas script: %v", err)
								return
							}
							if committed {
								break
							}
						}
					}
				}(w)
			}

			// Snapshot reader: RANGE sees all pairs consistent.
			var stop atomic.Bool
			wgR.Add(1)
			go func() {
				defer wgR.Done()
				cl, err := Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for !stop.Load() {
					kvs, err := cl.Range("", "", 0)
					if err != nil {
						errs <- fmt.Errorf("range: %v", err)
						return
					}
					snap := make(map[string]string, len(kvs))
					for _, kv := range kvs {
						snap[kv.Key] = string(kv.Val)
					}
					for i := 0; i < pairs; i++ {
						k := strconv.Itoa(i)
						if snap["c"+k] != snap["m"+k] {
							errs <- fmt.Errorf("torn snapshot: c%s=%q m%s=%q", k, snap["c"+k], k, snap["m"+k])
							return
						}
					}
				}
			}()

			writersDone := make(chan struct{})
			go func() {
				wgW.Wait()
				close(writersDone)
			}()
			select {
			case <-writersDone:
			case err := <-errs:
				t.Fatal(err)
			case <-time.After(120 * time.Second):
				t.Fatal("timeout waiting for writers")
			}
			stop.Store(true)
			wgR.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			// Final check: every pair consistent and no lost increments.
			total := 0
			for i := 0; i < pairs; i++ {
				k := strconv.Itoa(i)
				cv, _, err := seed.Get("c" + k)
				if err != nil {
					t.Fatal(err)
				}
				n, _ := strconv.Atoi(string(cv))
				total += n
			}
			if want := writers * iters; total != want {
				t.Fatalf("lost increments: total=%d want %d", total, want)
			}
		})
	}
}

func TestServerBTakeWokenByRemoteSet(t *testing.T) {
	srv, addr := startServer(t, Config{})
	taker := dialT(t, addr)
	setter := dialT(t, addr)

	got := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		v, err := taker.BTake("job")
		if err != nil {
			errc <- err
			return
		}
		got <- v
	}()

	// Wait until the taker is genuinely parked, then set remotely.
	waitParked(t, srv.TM(), 1)
	if err := setter.Set("job", []byte("payload")); err != nil {
		t.Fatalf("set: %v", err)
	}
	select {
	case v := <-got:
		if string(v) != "payload" {
			t.Fatalf("btake = %q", v)
		}
	case err := <-errc:
		t.Fatalf("btake: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("btake not woken by remote set")
	}
	// The take consumed the key.
	if _, ok, _ := setter.Get("job"); ok {
		t.Fatal("btake left the key behind")
	}
}

func TestServerWaitWokenByRemoteChange(t *testing.T) {
	srv, addr := startServer(t, Config{})
	waiter := dialT(t, addr)
	setter := dialT(t, addr)
	if err := setter.Set("cfg", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	type res struct {
		v  []byte
		ok bool
	}
	got := make(chan res, 1)
	errc := make(chan error, 1)
	go func() {
		v, ok, err := waiter.Wait("cfg", []byte("v1"), true)
		if err != nil {
			errc <- err
			return
		}
		got <- res{v, ok}
	}()
	waitParked(t, srv.TM(), 1)
	if err := setter.Set("cfg", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.ok || string(r.v) != "v2" {
			t.Fatalf("wait = %q ok=%v", r.v, r.ok)
		}
	case err := <-errc:
		t.Fatalf("wait: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("wait not woken")
	}

	// A Wait whose expectation is already stale answers immediately.
	v, ok, err := waiter.Wait("cfg", []byte("v1"), true)
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("stale wait = %q ok=%v err=%v", v, ok, err)
	}
}

// waitParked blocks until the TM reports at least n parks (the blocking
// layer's own counter — no sleep-and-hope).
func waitParked(t *testing.T, tm *tbtm.TM, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for tm.Stats().Parks < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d parks (stats %+v)", n, tm.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerGracefulShutdownWithParkedClients(t *testing.T) {
	srv, addr := startServer(t, Config{})
	const parked = 3
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		cl := dialT(t, addr)
		go func(cl *Client, i int) {
			_, err := cl.BTake("never:" + strconv.Itoa(i))
			errs <- err
		}(cl, i)
	}
	waitParked(t, srv.TM(), parked)

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("close did not return with parked clients")
	}
	for i := 0; i < parked; i++ {
		select {
		case err := <-errs:
			// The woken client sees the explicit shutdown status; a
			// connection torn down during drain surfaces as an IO error,
			// which is also a clean outcome.
			if err == nil {
				t.Fatal("parked BTake returned a value at shutdown")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("parked client not released by shutdown")
		}
	}
	// New connections are refused or immediately closed.
	if cl, err := Dial(addr); err == nil {
		if err := cl.Ping(); err == nil {
			t.Fatal("ping succeeded after shutdown")
		}
		cl.Close()
	}
}

func TestServerErrorKeepsConnectionUsable(t *testing.T) {
	_, addr := startServer(t, Config{})
	cl := dialT(t, addr)
	// Hand-write a bogus opcode frame (sequence ID, then junk).
	st, p, err := cl.roundTrip(cl.newReq(Op(0xEE)))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if st != StatusError {
		t.Fatalf("status = %d, want StatusError", st)
	}
	if msg, _, _ := takeBytes(p); !bytes.Contains(msg, []byte("opcode")) {
		t.Fatalf("error message = %q", msg)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after error: %v", err)
	}
}

// TestServerHammer mixes every opcode from many connections. Sizes
// honor -short for the race lane.
func TestServerHammer(t *testing.T) {
	srv, addr := startServer(t, Config{Leases: 4, BlockingLeases: 8})
	conns := 8
	iters := 300
	if testing.Short() {
		conns, iters = 4, 60
	}

	// A feeder keeps the blocking keyspace non-empty so BTAKErs always
	// wake; it stops after the workers are done.
	var stop atomic.Bool
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		cl := dialT(t, addr)
		i := 0
		for !stop.Load() {
			if err := cl.Set("tok:"+strconv.Itoa(i%4), []byte("t")); err != nil {
				return
			}
			i++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < iters; i++ {
				k := "h:" + strconv.Itoa((c*31+i)%64)
				var err error
				switch i % 7 {
				case 0:
					err = cl.Set(k, []byte(strconv.Itoa(i)))
				case 1:
					_, _, err = cl.Get(k)
				case 2:
					_, err = cl.Del(k)
				case 3:
					_, err = cl.Cas(k, []byte("x"), true, []byte("y"))
				case 4:
					_, _, err = cl.MultiExec([]MultiOp{MSet(k, []byte("m")), MGet(k)})
				case 5:
					_, err = cl.Range("h:", "h;", 16)
				case 6:
					_, err = cl.BTake("tok:" + strconv.Itoa(i%4))
				}
				if err != nil {
					errs <- fmt.Errorf("conn %d op %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	stop.Store(true)
	feedWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := srv.TM().Stats()
	if st.Commits == 0 {
		t.Fatal("hammer committed nothing")
	}
}

// TestServerBlockingClientDisconnectReclaimsLease pins the disconnect
// monitor: a client that hangs up while parked in BTAKE must have its
// blocking lease reclaimed (not leaked until shutdown), and the watched
// key must NOT be consumed on behalf of the dead client.
func TestServerBlockingClientDisconnectReclaimsLease(t *testing.T) {
	srv, addr := startServer(t, Config{Leases: 2, BlockingLeases: 1})
	cl := dialT(t, addr)
	errc := make(chan error, 1)
	go func() {
		_, err := cl.BTake("gone")
		errc <- err
	}()
	waitParked(t, srv.TM(), 1)
	if got := srv.exec.Metrics().BlockingInUse(); got != 1 {
		t.Fatalf("blocking in use = %d, want 1", got)
	}

	// Hang up mid-park. The monitor commits the cancel flag, the parked
	// transaction wakes with errClientGone, and the lease returns.
	cl.Close()
	deadline := time.Now().Add(30 * time.Second)
	for srv.exec.Metrics().BlockingInUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected client's blocking lease never reclaimed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-errc; err == nil {
		t.Fatal("BTake on a closed connection returned a value")
	}

	// The dead taker must not have consumed the key.
	cl2 := dialT(t, addr)
	if err := cl2.Set("gone", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl2.Get("gone"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("key consumed by a disconnected taker: %q ok=%v err=%v", v, ok, err)
	}

	// The single blocking lease is usable again.
	if err := cl2.Set("tok", []byte("t")); err != nil {
		t.Fatal(err)
	}
	if v, err := cl2.BTake("tok"); err != nil || string(v) != "t" {
		t.Fatalf("blocking tranche unusable after reclaim: %q err=%v", v, err)
	}
}

// TestServerOversizedReplyBounded pins response-side framing: a RANGE
// whose reply would exceed MaxFrame answers a StatusError frame (with
// guidance) instead of an oversized frame that would desync the client,
// and the connection stays usable.
func TestServerOversizedReplyBounded(t *testing.T) {
	_, addr := startServer(t, Config{MaxFrame: 4096})
	cl := dialT(t, addr)
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 50; i++ {
		if err := cl.Set(fmt.Sprintf("big:%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	_, err := cl.Range("big:", "big;", 0)
	if err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversized range = %v, want frame-limit error", err)
	}
	// Connection still in sync: a bounded range and a ping work.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after bounded reply: %v", err)
	}
	pairs, err := cl.Range("big:", "big;", 5)
	if err != nil || len(pairs) != 5 {
		t.Fatalf("limited range = %v pairs err=%v", pairs, err)
	}
}
