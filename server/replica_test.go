package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"tbtm/internal/wal"
)

// replicaOf starts a read replica following the primary at paddr and
// returns it with its address.
func replicaOf(t *testing.T, paddr string, cfg Config) (*Server, string) {
	t.Helper()
	cfg.ReplicaOf = paddr
	if cfg.ReplicaBackoff == 0 {
		cfg.ReplicaBackoff = 5 * time.Millisecond
	}
	return startServer(t, cfg)
}

// waitReplicaCaughtUp polls until the replica reports zero lag with a
// live primary connection AND has applied everything the primary's WAL
// has assigned. The replica's own lag gauge is computed against its
// last-heard primary seq, which trails the truth between heartbeats —
// comparing against the primary's LastAssignedSeq directly is what
// makes this helper race-free against a writer that just acked.
func waitReplicaCaughtUp(t *testing.T, p, r *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		target := p.dur.Log().LastAssignedSeq()
		st := r.ReplicaStats()
		if st.Connected && st.Lag == 0 && st.AppliedSeq >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up (primary seq %d): %+v", target, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaCatchUpAndReadOnly: a replica follows a durable primary's
// WAL, serves the replicated state to readers, refuses writes with the
// replica-specific error, and reports zero lag once the primary goes
// quiet.
func TestReplicaCatchUpAndReadOnly(t *testing.T) {
	fs := wal.NewMemFS()
	psrv, pcl := durableServer(t, fs, Config{})

	// State written BEFORE the replica exists arrives via the tail (or
	// checkpoint) during bootstrap.
	if err := pcl.Set("seeded", []byte("early")); err != nil {
		t.Fatal(err)
	}

	rsrv, raddr := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
	waitReplicaCaughtUp(t, psrv, rsrv)
	rcl := dialT(t, raddr)

	if v, ok, err := rcl.Get("seeded"); err != nil || !ok || !bytes.Equal(v, []byte("early")) {
		t.Fatalf("replica get seeded = %q ok=%v err=%v", v, ok, err)
	}

	// State written AFTER bootstrap arrives via the live tail.
	if err := pcl.Set("live", []byte("later")); err != nil {
		t.Fatal(err)
	}
	if _, err := pcl.Del("seeded"); err != nil {
		t.Fatal(err)
	}
	waitReplicaCaughtUp(t, psrv, rsrv)
	if v, ok, err := rcl.Get("live"); err != nil || !ok || !bytes.Equal(v, []byte("later")) {
		t.Fatalf("replica get live = %q ok=%v err=%v", v, ok, err)
	}
	if _, ok, err := rcl.Get("seeded"); err != nil || ok {
		t.Fatalf("replica still has deleted key: ok=%v err=%v", ok, err)
	}

	// Writes are refused with the replica error — typed distinctly from
	// the primary's WAL-degradation read-only error, so clients can
	// fail over instead of alerting.
	if err := rcl.Set("nope", []byte("x")); !errors.Is(err, ErrReplicaRead) {
		t.Fatalf("replica SET error = %v, want ErrReplicaRead", err)
	}
	if errors.Is(ErrReplicaRead, ErrReadOnlyMode) || errors.Is(ErrReadOnlyMode, ErrReplicaRead) {
		t.Fatal("ErrReplicaRead and ErrReadOnlyMode must be distinct")
	}
	if _, err := rcl.Del("live"); !errors.Is(err, ErrReplicaRead) {
		t.Fatalf("replica DEL error = %v, want ErrReplicaRead", err)
	}
	if _, err := rcl.Cas("live", []byte("later"), true, []byte("x")); !errors.Is(err, ErrReplicaRead) {
		t.Fatalf("replica CAS error = %v, want ErrReplicaRead", err)
	}
	// A write MULTI is refused whole; a read-only MULTI serves.
	if _, _, err := rcl.MultiExec([]MultiOp{MGet("live"), MSet("x", []byte("y"))}); !errors.Is(err, ErrReplicaRead) {
		t.Fatalf("replica write MULTI error = %v, want ErrReplicaRead", err)
	}
	res, committed, err := rcl.MultiExec([]MultiOp{MGet("live"), MGet("absent")})
	if err != nil || !committed || len(res) != 2 || !res[0].OK || res[1].OK {
		t.Fatalf("replica read MULTI = %+v committed=%v err=%v", res, committed, err)
	}

	// STATS carries the replication section.
	reply, err := rcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Repl == nil || !reply.Repl.Connected || reply.Repl.Lag != 0 || reply.Repl.AppliedSeq == 0 {
		t.Fatalf("replica STATS repl section = %+v", reply.Repl)
	}

	// The replicated applier commits as ordinary transactions: a WAIT
	// parked on the replica wakes when the primary's write arrives.
	woke := make(chan error, 1)
	waiter := dialT(t, raddr)
	go func() {
		v, present, err := waiter.Wait("watched", nil, false)
		if err == nil && (!present || !bytes.Equal(v, []byte("arrived"))) {
			err = fmt.Errorf("wait woke with %q present=%v", v, present)
		}
		woke <- err
	}()
	waitParked(t, rsrv.TM(), 1)
	if err := pcl.Set("watched", []byte("arrived")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-woke:
		if err != nil {
			t.Fatalf("replica WAIT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("replica WAIT not woken by replicated write")
	}
}

// TestReplicaSnapshotConsistencyUnderLoad is the acceptance check: the
// replica serves RANGE as ONE consistent snapshot while the primary
// commits concurrently. The primary updates eight keys atomically per
// round (one MULTI = one WAL record); any replica RANGE must observe
// all eight at the same round, never a torn mix.
func TestReplicaSnapshotConsistencyUnderLoad(t *testing.T) {
	fs := wal.NewMemFS()
	psrv, pcl := durableServer(t, fs, Config{})
	const fan = 8

	round := func(r int) []MultiOp {
		ops := make([]MultiOp, fan)
		for i := range ops {
			ops[i] = MSet(fmt.Sprintf("inv:%d", i), []byte(fmt.Sprintf("v%06d", r)))
		}
		return ops
	}
	if _, committed, err := pcl.MultiExec(round(0)); err != nil || !committed {
		t.Fatalf("seed round: committed=%v err=%v", committed, err)
	}

	rsrv, raddr := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
	waitReplicaCaughtUp(t, psrv, rsrv)
	rcl := dialT(t, raddr)

	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	writerDone := make(chan error, 1)
	go func() {
		for r := 1; r <= rounds; r++ {
			if _, committed, err := pcl.MultiExec(round(r)); err != nil || !committed {
				writerDone <- fmt.Errorf("round %d: committed=%v err=%v", r, committed, err)
				return
			}
		}
		writerDone <- nil
	}()

	// Hammer RANGE on the replica while the writer runs: every snapshot
	// must be internally consistent (all eight keys, one round).
	scans := 0
	for done := false; !done; {
		select {
		case err := <-writerDone:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
		}
		kvs, err := rcl.Range("inv:", "inv;", 0)
		if err != nil {
			t.Fatalf("replica range: %v", err)
		}
		if len(kvs) != fan {
			t.Fatalf("torn snapshot: %d keys, want %d", len(kvs), fan)
		}
		for _, kv := range kvs[1:] {
			if !bytes.Equal(kv.Val, kvs[0].Val) {
				t.Fatalf("torn snapshot: %s=%q vs %s=%q", kvs[0].Key, kvs[0].Val, kv.Key, kv.Val)
			}
		}
		scans++
	}
	if scans == 0 {
		t.Fatal("no concurrent scans ran")
	}

	// Writes stopped: lag drains to zero and the final snapshot is the
	// final round.
	waitReplicaCaughtUp(t, psrv, rsrv)
	kvs, err := rcl.Range("inv:", "inv;", 0)
	if err != nil || len(kvs) != fan {
		t.Fatalf("final range: %d keys err=%v", len(kvs), err)
	}
	want := []byte(fmt.Sprintf("v%06d", rounds))
	for _, kv := range kvs {
		if !bytes.Equal(kv.Val, want) {
			t.Fatalf("final %s = %q, want %q", kv.Key, kv.Val, want)
		}
	}
}

// TestReplicaBootstrapFromCheckpoint forces the primary through
// checkpoints (small segments, aggressive threshold) so its early WAL
// is pruned, then attaches a replica: bootstrap must come from the
// checkpoint snapshot plus the surviving tail, and a replica attached
// BEFORE the pruning must survive it (re-bootstrap on ErrPruned).
func TestReplicaBootstrapFromCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	psrv, pcl := durableServer(t, fs, Config{SegmentBytes: 2048, CheckpointBytes: 4096})

	// An early follower that will live through checkpointing/pruning.
	early, earlyAddr := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
	waitReplicaCaughtUp(t, psrv, early)

	val := bytes.Repeat([]byte("x"), 128)
	for i := 0; i < 400; i++ {
		if err := pcl.Set(fmt.Sprintf("bulk:%03d", i%50), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := pcl.Set("marker", []byte("present")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for psrv.dur.Log().Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("primary never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A replica attached fresh now must bootstrap through the
	// checkpoint (the early WAL may be gone).
	late, lateAddr := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
	waitReplicaCaughtUp(t, psrv, late)
	for _, addr := range []string{earlyAddr, lateAddr} {
		cl := dialT(t, addr)
		if v, ok, err := cl.Get("marker"); err != nil || !ok || !bytes.Equal(v, []byte("present")) {
			t.Fatalf("replica %s marker = %q ok=%v err=%v", addr, v, ok, err)
		}
		kvs, err := cl.Range("bulk:", "bulk;", 0)
		if err != nil || len(kvs) != 50 {
			t.Fatalf("replica %s bulk range: %d keys err=%v", addr, len(kvs), err)
		}
	}
	waitReplicaCaughtUp(t, psrv, early)
}

// TestReplicaReconnects: a replica outliving a broken connection (the
// primary's listener stays, the stream's conn is torn) re-dials and
// resumes from its applied position without losing state.
func TestReplicaReconnects(t *testing.T) {
	fs := wal.NewMemFS()
	psrv, pcl := durableServer(t, fs, Config{})
	if err := pcl.Set("pre", []byte("1")); err != nil {
		t.Fatal(err)
	}
	rsrv, raddr := replicaOf(t, pcl.c.RemoteAddr().String(), Config{})
	waitReplicaCaughtUp(t, psrv, rsrv)

	// Tear the replica's upstream connection out from under it.
	rsrv.replica.BreakConnForTest()
	if err := pcl.Set("post", []byte("2")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for rsrv.ReplicaStats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never reconnected: %+v", rsrv.ReplicaStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitReplicaCaughtUp(t, psrv, rsrv)
	rcl := dialT(t, raddr)
	for k, want := range map[string]string{"pre": "1", "post": "2"} {
		if v, ok, err := rcl.Get(k); err != nil || !ok || string(v) != want {
			t.Fatalf("after reconnect, %s = %q ok=%v err=%v", k, v, ok, err)
		}
	}
}

// TestReplicaRefusesDataDir pins the config refusal: a server cannot be
// both a durable primary and a replica.
func TestReplicaRefusesDataDir(t *testing.T) {
	_, err := New(Config{DataDir: "d", WALFS: wal.NewMemFS(), ReplicaOf: "127.0.0.1:1"})
	if err == nil {
		t.Fatal("New accepted DataDir+ReplicaOf")
	}
}

// TestReplicateRefusedWithoutWAL: OpReplicate against a plain in-memory
// server answers an error rather than hanging or panicking.
func TestReplicateRefusedWithoutWAL(t *testing.T) {
	_, addr := startServer(t, Config{})
	rsrv, _ := replicaOf(t, addr, Config{})
	deadline := time.Now().Add(10 * time.Second)
	for rsrv.ReplicaStats().Reconnects < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("replica of a WAL-less primary should cycle reconnects: %+v", rsrv.ReplicaStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rsrv.ReplicaStats().AppliedSeq != 0 {
		t.Fatalf("applied from a WAL-less primary: %+v", rsrv.ReplicaStats())
	}
}
