package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtm"
	"tbtm/server/wire"
)

// newTestEngine builds the engine trio the way the composition root
// does: TM with the server's invariant options, store, executor.
func newTestEngine(t *testing.T, fast, blocking int) (*tbtm.TM, *Store, *Executor) {
	t.Helper()
	tm, err := tbtm.New(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(0),
	)
	if err != nil {
		t.Fatalf("tbtm.New: %v", err)
	}
	return tm, NewStore(tm, 1024), NewExecutor(tm, fast, blocking, &Metrics{})
}

// TestExecutorLeaseFairness floods a single-lease tranche from many
// goroutines: every acquirer must get through (FIFO queuing, no
// starvation).
func TestExecutorLeaseFairness(t *testing.T) {
	_, _, e := newTestEngine(t, 1, 1)
	const (
		goroutines = 32
		rounds     = 50
	)
	var done [goroutines]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l, err := e.Acquire(nil, false)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				done[g].Add(1)
				e.Release(l)
			}
		}(g)
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		var counts []int64
		for g := range done {
			counts = append(counts, done[g].Load())
		}
		t.Fatalf("starvation: per-goroutine progress %v", counts)
	}
	m := e.Metrics()
	if got := m.fastInUse.Load(); got != 0 {
		t.Fatalf("fast leases still marked in use: %d", got)
	}
	if m.acquires.Load() < goroutines*rounds {
		t.Fatalf("acquires = %d, want >= %d", m.acquires.Load(), goroutines*rounds)
	}
}

// TestExecutorBackpressure pins the contract for an exhausted tranche:
// acquirers queue (visible in the waiters gauge), a context deadline
// rejects them, and a release hands the lease to a queued waiter.
func TestExecutorBackpressure(t *testing.T) {
	_, _, e := newTestEngine(t, 1, 1)
	l, err := e.Acquire(nil, false)
	if err != nil {
		t.Fatal(err)
	}

	// A bounded acquire against the empty pool must reject with the
	// context's error and count a reject.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.Acquire(ctx, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded acquire = %v, want deadline", err)
	}
	if got := e.Metrics().rejects.Load(); got != 1 {
		t.Fatalf("rejects = %d, want 1", got)
	}

	// An unbounded acquire queues; the waiters gauge sees it; releasing
	// hands over.
	got := make(chan *Lease, 1)
	go func() {
		l2, err := e.Acquire(nil, false)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		got <- l2
	}()
	deadline := time.Now().Add(30 * time.Second)
	for e.Metrics().waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	e.Release(l)
	select {
	case l2 := <-got:
		e.Release(l2)
	case <-time.After(30 * time.Second):
		t.Fatal("release did not hand the lease to the queued waiter")
	}
	if w := e.Metrics().acquireWaits.Load(); w < 2 {
		t.Fatalf("acquireWaits = %d, want >= 2", w)
	}
}

// TestExecutorCloseUnblocksWaiters: Close must fail queued acquirers
// with ErrExecutorClosed and future acquires likewise.
func TestExecutorCloseUnblocksWaiters(t *testing.T) {
	_, _, e := newTestEngine(t, 1, 1)
	l, err := e.Acquire(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release(l)
	errc := make(chan error, 1)
	go func() {
		_, err := e.Acquire(nil, false)
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for e.Metrics().waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrExecutorClosed) {
			t.Fatalf("queued acquire after close = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("close did not unblock the queued acquire")
	}
	if _, err := e.Acquire(nil, false); !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("acquire after close = %v", err)
	}
}

// TestBlockingLeaseHeldAcrossParkWake is the executor's core contract:
// a blocking WAIT pins its lease across park and wake — the blocking
// in-use gauge stays up for the whole park — while the engine keeps
// committing at full speed on the fast tranche, i.e. a parked lease
// stalls neither the lease pool nor the epoch recycler.
func TestBlockingLeaseHeldAcrossParkWake(t *testing.T) {
	tm, store, e := newTestEngine(t, 2, 1)

	if err := e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
		return store.Set(th, "watched", []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}

	woke := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		err := e.Do(nil, wire.OpWait, true, func(th *tbtm.Thread) error {
			v, _, err := store.Wait(th, "watched", true, []byte("v1"), nil)
			if err == nil {
				woke <- v
			}
			return err
		})
		if err != nil {
			errc <- err
		}
	}()

	// Wait for a real park, lease held.
	deadline := time.Now().Add(30 * time.Second)
	for tm.Stats().Parks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("waiter never parked: %+v", tm.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Metrics().blockingInUse.Load(); got != 1 {
		t.Fatalf("blocking lease not held across park: in use = %d", got)
	}

	// The parked lease must not stall the rest of the engine: run a
	// burst of update transactions on unrelated keys through the fast
	// tranche and require the commit counter to advance by the full
	// burst (a stalled recycler would make these abort or block).
	const burst = 2000
	before := tm.Stats().Commits
	for i := 0; i < burst; i++ {
		if err := e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
			return store.Set(th, "unrelated", []byte("x"))
		}); err != nil {
			t.Fatalf("burst set %d: %v", i, err)
		}
	}
	if got := tm.Stats().Commits - before; got < burst {
		t.Fatalf("burst commits = %d, want >= %d (parked lease stalled the engine?)", got, burst)
	}
	select {
	case v := <-woke:
		t.Fatalf("waiter woke on unrelated traffic: %q", v)
	case err := <-errc:
		t.Fatalf("waiter failed: %v", err)
	default:
	}

	// Now change the watched key: the parked transaction must wake on
	// the SAME lease and deliver the new value.
	if err := e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
		return store.Set(th, "watched", []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-woke:
		if string(v) != "v2" {
			t.Fatalf("woke with %q, want v2", v)
		}
	case err := <-errc:
		t.Fatalf("waiter failed: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("parked waiter not woken by the watched commit")
	}
	// Lease released after the wake.
	deadline = time.Now().Add(30 * time.Second)
	for e.Metrics().blockingInUse.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocking lease not released after wake")
		}
		time.Sleep(time.Millisecond)
	}
	if tm.Stats().Wakeups == 0 {
		t.Fatalf("no wakeup recorded: %+v", tm.Stats())
	}
}

// TestExecutorShutdownWithParkedLeases: the composition root's shutdown
// sequence — commit the store's closed flag, then close the executor —
// while every blocking lease is parked must wake them all
// (ErrServerClosed) and leave the executor drained.
func TestExecutorShutdownWithParkedLeases(t *testing.T) {
	tm, store, e := newTestEngine(t, 2, 3)
	const parked = 3
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func(i int) {
			errs <- e.Do(nil, wire.OpBTake, true, func(th *tbtm.Thread) error {
				_, err := store.BTake(th, fmt.Sprintf("nothing:%d", i), nil)
				return err
			})
		}(i)
	}
	deadline := time.Now().Add(30 * time.Second)
	for tm.Stats().Parks < parked {
		if time.Now().After(deadline) {
			t.Fatalf("parks = %d, want %d", tm.Stats().Parks, parked)
		}
		time.Sleep(time.Millisecond)
	}
	sysTh := tm.NewThread()
	if err := store.MarkClosed(sysTh); err != nil {
		t.Fatalf("mark closed: %v", err)
	}
	for i := 0; i < parked; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrServerClosed) {
				t.Fatalf("parked btake at shutdown = %v, want ErrServerClosed", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("parked lease not woken by shutdown")
		}
	}
	e.Close()
	if got := e.Metrics().blockingInUse.Load(); got != 0 {
		t.Fatalf("blocking leases still in use after shutdown: %d", got)
	}
}

// TestExecutorHammer drives mixed fast and blocking traffic directly at
// the executor under contention-sized pools; honors -short.
func TestExecutorHammer(t *testing.T) {
	tm, store, e := newTestEngine(t, 2, 4)
	workers := 12
	iters := 150
	if testing.Short() {
		workers, iters = 8, 60
	}

	// Feeder keeps the token keys supplied for the blocking mix.
	var stop atomic.Bool
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		for i := 0; !stop.Load(); i++ {
			err := e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
				return store.Set(th, "tok:"+fmt.Sprint(i%8), []byte("t"))
			})
			if err != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				switch i % 4 {
				case 0:
					err = e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
						return store.Set(th, fmt.Sprintf("k:%d", (w*7+i)%32), []byte("v"))
					})
				case 1, 2:
					err = e.Do(nil, wire.OpGet, false, func(th *tbtm.Thread) error {
						_, _, e := store.Get(th, fmt.Sprintf("k:%d", i%32))
						return e
					})
				case 3:
					err = e.Do(nil, wire.OpBTake, true, func(th *tbtm.Thread) error {
						_, e := store.BTake(th, "tok:"+fmt.Sprint(i%8), nil)
						return e
					})
				}
				if err != nil {
					errc <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatal("hammer wedged")
	}
	stop.Store(true)
	// Unstick the feeder-dependent stragglers: none should exist because
	// workers finished, but the feeder loop also exits on stop.
	feedWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	m := e.Metrics()
	if m.fastInUse.Load() != 0 || m.blockingInUse.Load() != 0 {
		t.Fatalf("leases leaked: fast=%d blocking=%d", m.fastInUse.Load(), m.blockingInUse.Load())
	}
	if tm.Stats().Commits == 0 {
		t.Fatal("hammer committed nothing")
	}
}
