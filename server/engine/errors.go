package engine

import "errors"

// ErrServerClosed reports an operation refused — or a blocked operation
// woken — because the server is shutting down.
var ErrServerClosed = errors.New("server: closed")

// ErrClientGone wakes a parked operation whose client disconnected; the
// connection is torn down without consuming the watched key.
var ErrClientGone = errors.New("server: client disconnected")

// ErrExecutorClosed reports an Acquire on a closed executor.
var ErrExecutorClosed = errors.New("server: executor closed")

// ErrReadOnly reports an update refused — or an update whose durability
// could not be guaranteed — because the server degraded to read-only
// after a write-ahead-log I/O failure. Reads still succeed.
//
// It lives here (not in server/durable) so the transport can map it to
// StatusReadOnly without depending on the durability layer.
var ErrReadOnly = errors.New("server: read-only (write-ahead log failed)")

// ErrReplicaRead reports an update sent to a replica: replicas serve
// snapshot-consistent reads only, and writes must go to the primary.
// Distinct from ErrReadOnly so clients can tell a retryable routing
// mistake from a primary's permanent ENOSPC degradation.
var ErrReplicaRead = errors.New("server: replica is read-only; write to the primary")
