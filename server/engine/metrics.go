package engine

import (
	"math/bits"
	"sync/atomic"
	"time"

	"tbtm/server/wire"
)

// latBuckets is the number of exponential latency buckets: bucket i
// holds operations with latency in [2^i, 2^(i+1)) microseconds, with
// the first and last buckets absorbing the tails. 22 buckets span <1µs
// to >2s.
const latBuckets = 22

// opMetrics is the per-opcode slice of the server's metrics: counts,
// errors, cumulative latency and an exponential latency histogram. All
// fields are updated with atomics; recording allocates nothing.
type opMetrics struct {
	count   atomic.Uint64
	errs    atomic.Uint64
	totalNs atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func (m *opMetrics) record(d time.Duration, err error) {
	m.count.Add(1)
	if err != nil {
		m.errs.Add(1)
	}
	ns := uint64(d.Nanoseconds())
	m.totalNs.Add(ns)
	b := bits.Len64(ns / 1000) // microseconds, log2
	if b >= latBuckets {
		b = latBuckets - 1
	}
	m.buckets[b].Add(1)
}

// Metrics aggregates the server's operational counters: per-opcode
// latency and the executor's lease/backpressure gauges. It is exported
// over the wire by OpStats.
type Metrics struct {
	ops [wire.OpMax]opMetrics

	// batch aggregates pipelined batches (one entry per batch, not per
	// constituent op); batchedOps counts the ops the batches carried, so
	// batchedOps/batch.count is the realized mean batch size.
	batch      opMetrics
	batchedOps atomic.Uint64

	// Executor gauges and counters.
	fastInUse     atomic.Int64
	blockingInUse atomic.Int64
	waiters       atomic.Int64
	acquires      atomic.Uint64
	acquireWaits  atomic.Uint64 // acquisitions that had to queue
	acquireWaitNs atomic.Uint64
	rejects       atomic.Uint64 // acquisitions abandoned (ctx done / closed)
}

// RecordOp records one operation's latency and outcome under op. The
// transport uses it to attribute a batch's amortized per-op latency to
// the constituent opcodes.
func (m *Metrics) RecordOp(op wire.Op, d time.Duration, err error) {
	m.ops[op].record(d, err)
}

// BlockingInUse returns the blocking-tranche in-use gauge (tests use it
// to observe lease pinning across park/wake).
func (m *Metrics) BlockingInUse() int64 { return m.blockingInUse.Load() }

// BatchCount and BatchedOps expose the pipelining counters (tests
// assert that bursts actually coalesce).
func (m *Metrics) BatchCount() uint64 { return m.batch.count.Load() }
func (m *Metrics) BatchedOps() uint64 { return m.batchedOps.Load() }

// OpCounters is the snapshot of one opcode's metrics.
type OpCounters struct {
	Count    uint64   `json:"count"`
	Errors   uint64   `json:"errors"`
	AvgUs    float64  `json:"avg_us"`
	LatencyH []uint64 `json:"latency_log2us,omitempty"`
}

// ExecutorStats is the snapshot of the executor's lease accounting.
type ExecutorStats struct {
	FastLeases     int    `json:"fast_leases"`
	BlockingLeases int    `json:"blocking_leases"`
	FastInUse      int64  `json:"fast_in_use"`
	BlockingInUse  int64  `json:"blocking_in_use"`
	Waiters        int64  `json:"waiters"`
	Acquires       uint64 `json:"acquires"`
	AcquireWaits   uint64 `json:"acquire_waits"`
	AcquireWaitUs  uint64 `json:"acquire_wait_us"`
	Rejects        uint64 `json:"rejects"`
	// Batches counts pipelined batches executed under one lease;
	// BatchedOps the wire ops they carried (mean batch size =
	// BatchedOps/Batches).
	Batches    uint64 `json:"batches"`
	BatchedOps uint64 `json:"batched_ops"`
}

// MetricsSnapshot is the JSON form of Metrics.
type MetricsSnapshot struct {
	Ops      map[string]OpCounters `json:"ops"`
	Executor ExecutorStats         `json:"executor"`
}

// Snapshot captures the current counters. pool sizes come from the
// executor (the Metrics struct does not know them).
func (m *Metrics) Snapshot(fastLeases, blockingLeases int) MetricsSnapshot {
	out := MetricsSnapshot{Ops: make(map[string]OpCounters)}
	for op := wire.Op(1); op < wire.OpMax; op++ {
		om := &m.ops[op]
		n := om.count.Load()
		if n == 0 {
			continue
		}
		s := OpCounters{Count: n, Errors: om.errs.Load()}
		s.AvgUs = float64(om.totalNs.Load()) / float64(n) / 1e3
		h := make([]uint64, latBuckets)
		nonzero := false
		for i := range h {
			h[i] = om.buckets[i].Load()
			nonzero = nonzero || h[i] != 0
		}
		if nonzero {
			s.LatencyH = h
		}
		out.Ops[op.String()] = s
	}
	if n := m.batch.count.Load(); n > 0 {
		s := OpCounters{Count: n, Errors: m.batch.errs.Load()}
		s.AvgUs = float64(m.batch.totalNs.Load()) / float64(n) / 1e3
		out.Ops["batch"] = s
	}
	out.Executor = ExecutorStats{
		FastLeases:     fastLeases,
		BlockingLeases: blockingLeases,
		FastInUse:      m.fastInUse.Load(),
		BlockingInUse:  m.blockingInUse.Load(),
		Waiters:        m.waiters.Load(),
		Acquires:       m.acquires.Load(),
		AcquireWaits:   m.acquireWaits.Load(),
		AcquireWaitUs:  m.acquireWaitNs.Load() / 1e3,
		Rejects:        m.rejects.Load(),
		Batches:        m.batch.count.Load(),
		BatchedOps:     m.batchedOps.Load(),
	}
	return out
}
