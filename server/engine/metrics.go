package engine

import (
	"sync/atomic"
	"time"

	"tbtm/internal/telemetry"
	"tbtm/server/wire"
)

// opMetrics is the per-opcode slice of the server's metrics: errors
// plus a shared log2 latency histogram (count and cumulative time
// ride inside the histogram). Buckets are NANOSECOND powers of two —
// an earlier revision bucketed microseconds, which collapsed every
// sub-µs fast-path op into bucket 0 and made the in-process fast path
// invisible; TestOpMetricsSubMicrosecond pins the fix.
type opMetrics struct {
	errs atomic.Uint64
	lat  telemetry.Hist
}

func (m *opMetrics) record(d time.Duration, err error) {
	if err != nil {
		m.errs.Add(1)
	}
	m.lat.Observe(uint64(d.Nanoseconds()))
}

// Metrics aggregates the server's operational counters: per-opcode
// latency and the executor's lease/backpressure gauges. It is exported
// over the wire by OpStats and scraped by the telemetry registry.
type Metrics struct {
	ops [wire.OpMax]opMetrics

	// batch aggregates pipelined batches (one entry per batch, not per
	// constituent op); batchedOps counts the ops the batches carried, so
	// batchedOps/batch.count is the realized mean batch size.
	batch      opMetrics
	batchedOps atomic.Uint64

	// Executor gauges and counters.
	fastInUse     atomic.Int64
	blockingInUse atomic.Int64
	waiters       atomic.Int64
	acquires      atomic.Uint64
	acquireWaits  atomic.Uint64 // acquisitions that had to queue
	acquireWaitNs atomic.Uint64
	rejects       atomic.Uint64 // acquisitions abandoned (ctx done / closed)

	// leaseWaitH is the wait-time histogram (ns) for acquisitions that
	// queued — the server's backpressure signal, exposed at /metrics.
	leaseWaitH telemetry.Hist
}

// RecordOp records one operation's latency and outcome under op. The
// transport uses it to attribute a batch's amortized per-op latency to
// the constituent opcodes.
func (m *Metrics) RecordOp(op wire.Op, d time.Duration, err error) {
	m.ops[op].record(d, err)
}

// BlockingInUse returns the blocking-tranche in-use gauge (tests use it
// to observe lease pinning across park/wake).
func (m *Metrics) BlockingInUse() int64 { return m.blockingInUse.Load() }

// BatchCount and BatchedOps expose the pipelining counters (tests
// assert that bursts actually coalesce).
func (m *Metrics) BatchCount() uint64 { return m.batch.lat.Count() }
func (m *Metrics) BatchedOps() uint64 { return m.batchedOps.Load() }

// OpLatency returns the live latency histogram for op (the telemetry
// registry adapts it into a Prometheus histogram).
func (m *Metrics) OpLatency(op wire.Op) *telemetry.Hist { return &m.ops[op].lat }

// OpErrors returns op's cumulative error count.
func (m *Metrics) OpErrors(op wire.Op) uint64 { return m.ops[op].errs.Load() }

// BatchLatency returns the per-batch latency histogram.
func (m *Metrics) BatchLatency() *telemetry.Hist { return &m.batch.lat }

// LeaseWait returns the queued-acquire wait histogram.
func (m *Metrics) LeaseWait() *telemetry.Hist { return &m.leaseWaitH }

// OpCounters is the snapshot of one opcode's metrics.
type OpCounters struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	AvgUs  float64 `json:"avg_us"`
	// LatencyH buckets are log2 NANOSECONDS: entry i counts ops with
	// latency in [2^(i-1), 2^i) ns (entry 0: < 1ns).
	LatencyH []uint64 `json:"latency_log2ns,omitempty"`
}

// ExecutorStats is the snapshot of the executor's lease accounting.
type ExecutorStats struct {
	FastLeases     int    `json:"fast_leases"`
	BlockingLeases int    `json:"blocking_leases"`
	FastInUse      int64  `json:"fast_in_use"`
	BlockingInUse  int64  `json:"blocking_in_use"`
	Waiters        int64  `json:"waiters"`
	Acquires       uint64 `json:"acquires"`
	AcquireWaits   uint64 `json:"acquire_waits"`
	AcquireWaitUs  uint64 `json:"acquire_wait_us"`
	Rejects        uint64 `json:"rejects"`
	// Batches counts pipelined batches executed under one lease;
	// BatchedOps the wire ops they carried (mean batch size =
	// BatchedOps/Batches).
	Batches    uint64 `json:"batches"`
	BatchedOps uint64 `json:"batched_ops"`
}

// MetricsSnapshot is the JSON form of Metrics.
type MetricsSnapshot struct {
	Ops      map[string]OpCounters `json:"ops"`
	Executor ExecutorStats         `json:"executor"`
}

// Snapshot captures the current counters. pool sizes come from the
// executor (the Metrics struct does not know them).
func (m *Metrics) Snapshot(fastLeases, blockingLeases int) MetricsSnapshot {
	out := MetricsSnapshot{Ops: make(map[string]OpCounters)}
	for op := wire.Op(1); op < wire.OpMax; op++ {
		om := &m.ops[op]
		n := om.lat.Count()
		if n == 0 {
			continue
		}
		s := OpCounters{Count: n, Errors: om.errs.Load()}
		s.AvgUs = float64(om.lat.Sum()) / float64(n) / 1e3
		counts := om.lat.Load()
		nonzero := false
		for _, c := range counts {
			if c != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			h := make([]uint64, telemetry.HistBuckets)
			copy(h, counts[:])
			s.LatencyH = h
		}
		out.Ops[op.String()] = s
	}
	if n := m.batch.lat.Count(); n > 0 {
		s := OpCounters{Count: n, Errors: m.batch.errs.Load()}
		s.AvgUs = float64(m.batch.lat.Sum()) / float64(n) / 1e3
		out.Ops["batch"] = s
	}
	out.Executor = ExecutorStats{
		FastLeases:     fastLeases,
		BlockingLeases: blockingLeases,
		FastInUse:      m.fastInUse.Load(),
		BlockingInUse:  m.blockingInUse.Load(),
		Waiters:        m.waiters.Load(),
		Acquires:       m.acquires.Load(),
		AcquireWaits:   m.acquireWaits.Load(),
		AcquireWaitUs:  m.acquireWaitNs.Load() / 1e3,
		Rejects:        m.rejects.Load(),
		Batches:        m.batch.lat.Count(),
		BatchedOps:     m.batchedOps.Load(),
	}
	return out
}
