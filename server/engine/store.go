// Package engine is the server's operation layer: the transactional
// store (hash map + ordered key index), the Thread-leasing executor,
// pipelined batch execution, MULTI scripts, and the per-opcode metrics.
// It sits between server/wire (pure protocol types) and the layers
// above it — server/durable wraps the Store's write paths with
// write-ahead logging, server/repl wraps them with replica read-only
// routing, and server/transport drives any KV implementation over the
// wire.
package engine

import (
	"bytes"
	"errors"
	"fmt"

	"tbtm"
	"tbtm/server/wire"
	"tbtm/structs"
)

// scriptAbort is returned from inside an OpMulti transaction body when a
// CAS sub-op fails: it is non-retryable, so Atomic aborts the attempt
// and nothing in the script commits. failed is the index of the sub-op
// that failed.
type scriptAbort struct{ failed int }

func (a *scriptAbort) Error() string {
	return fmt.Sprintf("server: multi script aborted at op %d", a.failed)
}

// Classifier sites for the executor's update paths. They are package
// constants on purpose: AtomicSite keys its per-site statistics by the
// string, and building the name per request ("set:"+key and the like)
// would both allocate on the hot path and explode the site table.
// TestWarmServerOpAllocs pins the no-per-request-allocation property.
const (
	siteSet   = "tbtmd/set"
	siteDel   = "tbtmd/del"
	siteCas   = "tbtmd/cas"
	siteMulti = "tbtmd/multi"
	// SiteBTake is exported: server/durable restructures BTAKE around
	// the checkpoint gate and runs the take attempt under this site.
	SiteBTake = "tbtmd/btake"
	siteBatch = "tbtmd/batch"
)

// KV is the operation surface the transport drives. *Store implements
// it with plain in-memory transactions; server/durable and server/repl
// wrap a *Store to add write-ahead logging and replica read-only
// routing without the transport knowing the difference.
type KV interface {
	Get(th *tbtm.Thread, key string) (val []byte, ok bool, err error)
	Set(th *tbtm.Thread, key string, val []byte) error
	Del(th *tbtm.Thread, key string) (bool, error)
	Cas(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (bool, error)
	RangeScan(th *tbtm.Thread, from, to string, limit int) ([]Pair, error)
	Multi(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) (committed bool, err error)
	ExecBatch(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) error
	ExecBatchRO(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) error
	ExecOne(th *tbtm.Thread, sub *MultiSub) (SubResult, error)
	BTake(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) ([]byte, error)
	Wait(th *tbtm.Thread, key string, oldPresent bool, old []byte, cancel *tbtm.Var[bool]) (val []byte, present bool, err error)
	MarkClosed(th *tbtm.Thread) error
}

// Store is the server's transactional state: a hash map holding the
// values and a skip-list index over the keys for ordered RANGE scans,
// updated together inside every writing transaction, plus the shutdown
// flag blocking operations watch.
//
// Values are stored as the []byte handed in, never copied or mutated
// afterwards (the library's immutable-snapshot rule), so callers must
// pass buffers they will not reuse — the connection handler copies out
// of its frame buffer, and readers may send a returned value without
// copying.
type Store struct {
	vals *structs.Map[string, []byte]
	keys *structs.SkipList[string]
	// closed is read by blocking bodies on their retry path only, so it
	// joins the parked footprint exactly when a client is parked: the
	// shutdown commit wakes every parked client.
	closed *tbtm.Var[bool]
}

// NewStore builds the store's transactional structures on tm.
func NewStore(tm *tbtm.TM, buckets int) *Store {
	return &Store{
		vals:   structs.NewMap[string, []byte](tm, buckets, structs.StringHash),
		keys:   structs.NewSkipList[string](tm, func(a, b string) bool { return a < b }),
		closed: tbtm.NewVar(tm, false),
	}
}

// GetTx reads key inside tx.
func (s *Store) GetTx(tx tbtm.Tx, key string) ([]byte, bool, error) {
	return s.vals.Get(tx, key)
}

// SetTx writes key inside tx, maintaining the range index.
func (s *Store) SetTx(tx tbtm.Tx, key string, val []byte) error {
	inserted, err := s.vals.Put(tx, key, val)
	if err != nil {
		return err
	}
	if inserted {
		_, err = s.keys.Insert(tx, key)
	}
	return err
}

// DelTx removes key inside tx, maintaining the range index.
func (s *Store) DelTx(tx tbtm.Tx, key string) (bool, error) {
	deleted, err := s.vals.Delete(tx, key)
	if err != nil || !deleted {
		return false, err
	}
	if _, err := s.keys.Remove(tx, key); err != nil {
		return false, err
	}
	return true, nil
}

// CasTx compares-and-swaps key inside tx: the swap applies iff the key's
// presence matches expectPresent and, when present, its bytes equal
// expect.
func (s *Store) CasTx(tx tbtm.Tx, key string, expectPresent bool, expect, val []byte) (bool, error) {
	cur, ok, err := s.vals.Get(tx, key)
	if err != nil {
		return false, err
	}
	if ok != expectPresent || (ok && !bytes.Equal(cur, expect)) {
		return false, nil
	}
	return true, s.SetTx(tx, key, val)
}

// Get runs a single-key read in its own short read-only transaction.
func (s *Store) Get(th *tbtm.Thread, key string) (val []byte, ok bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var e error
		val, ok, e = s.GetTx(tx, key)
		return e
	})
	return
}

// Set runs a single-key write under the classifier's siteSet.
func (s *Store) Set(th *tbtm.Thread, key string, val []byte) error {
	return th.AtomicSite(siteSet, func(tx tbtm.Tx) error {
		return s.SetTx(tx, key, val)
	})
}

// Del runs a single-key delete under siteDel.
func (s *Store) Del(th *tbtm.Thread, key string) (deleted bool, err error) {
	err = th.AtomicSite(siteDel, func(tx tbtm.Tx) error {
		var e error
		deleted, e = s.DelTx(tx, key)
		return e
	})
	return
}

// Cas runs a compare-and-swap under siteCas.
func (s *Store) Cas(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (swapped bool, err error) {
	err = th.AtomicSite(siteCas, func(tx tbtm.Tx) error {
		var e error
		swapped, e = s.CasTx(tx, key, expectPresent, expect, val)
		return e
	})
	return
}

// Pair is one key/value pair of a RANGE reply.
type Pair struct {
	Key string
	Val []byte
}

// RangeScan returns, in one long read-only transaction, up to limit
// pairs with from <= key < to (to == "" means unbounded above, limit 0
// means unlimited). The whole scan is one consistent snapshot.
func (s *Store) RangeScan(th *tbtm.Thread, from, to string, limit int) ([]Pair, error) {
	var out []Pair
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		out = out[:0]
		return s.keys.AscendFrom(tx, from, func(k string) (bool, error) {
			if to != "" && k >= to {
				return false, nil
			}
			v, ok, err := s.vals.Get(tx, k)
			if err != nil {
				return false, err
			}
			if ok { // the index is maintained with the map; ok is always true
				out = append(out, Pair{Key: k, Val: v})
			}
			return limit == 0 || len(out) < limit, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SubResult is the outcome of one sub-op of a multi script.
type SubResult struct {
	Status  wire.Status
	Val     []byte
	Present bool // OpGet found / OpDel deleted / OpCas swapped
}

// MultiSub is one script operation with its key and stored value
// already materialised (string key, private value copy): the conversion
// is retry-invariant, so callers do it ONCE before the transaction
// rather than on every conflict re-run. Expect may alias the caller's
// frame buffer — it is only compared inside the attempt, never stored.
type MultiSub struct {
	Op            wire.Op
	Key           string
	Val           []byte
	Expect        []byte
	ExpectPresent bool
}

// Materialize converts parsed sub-requests into retry-stable script
// entries, reusing dst.
func Materialize(subs []wire.SubReq, dst []MultiSub) []MultiSub {
	dst = dst[:0]
	for i := range subs {
		sub := &subs[i]
		m := MultiSub{Op: sub.Op, Key: string(sub.Key), Expect: sub.Expect, ExpectPresent: sub.ExpectPresent}
		if sub.Op == wire.OpSet || sub.Op == wire.OpCas {
			m.Val = CopyBytes(sub.Val)
		}
		dst = append(dst, m)
	}
	return dst
}

// ReadOnlySubs reports whether every sub-op is a GET.
func ReadOnlySubs(subs []MultiSub) bool {
	for i := range subs {
		if subs[i].Op != wire.OpGet {
			return false
		}
	}
	return true
}

// Multi executes a script as one transaction under siteMulti. committed
// reports whether the script took effect: a failed CAS returns
// committed = false with results up to and including the failed sub-op,
// and nothing is written. results is reset and refilled on every attempt
// so the caller can pass a reused buffer.
func (s *Store) Multi(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) (committed bool, err error) {
	err = th.AtomicSite(siteMulti, func(tx tbtm.Tx) error {
		*results = (*results)[:0]
		for i := range subs {
			sub := &subs[i]
			res := SubResult{Status: wire.StatusOK}
			switch sub.Op {
			case wire.OpGet:
				v, ok, err := s.GetTx(tx, sub.Key)
				if err != nil {
					return err
				}
				res.Val, res.Present = v, ok
				if !ok {
					res.Status = wire.StatusNotFound
				}
			case wire.OpSet:
				if err := s.SetTx(tx, sub.Key, sub.Val); err != nil {
					return err
				}
			case wire.OpDel:
				ok, err := s.DelTx(tx, sub.Key)
				if err != nil {
					return err
				}
				res.Present = ok
			case wire.OpCas:
				ok, err := s.CasTx(tx, sub.Key, sub.ExpectPresent, sub.Expect, sub.Val)
				if err != nil {
					return err
				}
				res.Present = ok
				if !ok {
					*results = append(*results, res)
					return &scriptAbort{failed: i}
				}
			default:
				return fmt.Errorf("server: opcode %s not valid in multi", sub.Op)
			}
			*results = append(*results, res)
		}
		return nil
	})
	var abort *scriptAbort
	if errors.As(err, &abort) {
		return false, nil
	}
	return err == nil, err
}

// ExecBatch runs a pipelined batch of independent single-key operations
// under ONE transaction — one lease, one begin→commit window, one
// commit tick for the whole batch. This is the server-side analogue of
// the engine's amortized snapshot validation: k wire ops pay one commit
// instead of k.
//
// Semantics are those of the ops run back to back at the commit point:
// reads see the batch's own earlier writes, and a failed CAS is a
// RESULT (present = false), not an abort — unlike a MULTI script, the
// batch's ops belong to independent requests that merely shared a
// window, so one op's compare failure must not roll back its
// neighbours. results is reset and refilled on every conflict re-run.
func (s *Store) ExecBatch(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) error {
	return th.AtomicSite(siteBatch, func(tx tbtm.Tx) error {
		return s.batchBody(tx, subs, results)
	})
}

// ExecBatchRO is ExecBatch for an all-read batch: a short read-only
// transaction, so a pipelined GET burst rides the engine's zero-alloc
// read path and never touches the commit path at all.
func (s *Store) ExecBatchRO(th *tbtm.Thread, subs []MultiSub, results *[]SubResult) error {
	return th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		return s.batchBody(tx, subs, results)
	})
}

// batchBody executes the batch ops inside tx, one SubResult each.
func (s *Store) batchBody(tx tbtm.Tx, subs []MultiSub, results *[]SubResult) error {
	*results = (*results)[:0]
	for i := range subs {
		sub := &subs[i]
		res := SubResult{Status: wire.StatusOK}
		switch sub.Op {
		case wire.OpGet:
			v, ok, err := s.GetTx(tx, sub.Key)
			if err != nil {
				return err
			}
			res.Val, res.Present = v, ok
			if !ok {
				res.Status = wire.StatusNotFound
			}
		case wire.OpSet:
			if err := s.SetTx(tx, sub.Key, sub.Val); err != nil {
				return err
			}
		case wire.OpDel:
			ok, err := s.DelTx(tx, sub.Key)
			if err != nil {
				return err
			}
			res.Present = ok
		case wire.OpCas:
			ok, err := s.CasTx(tx, sub.Key, sub.ExpectPresent, sub.Expect, sub.Val)
			if err != nil {
				return err
			}
			res.Present = ok // a failed CAS is a result here, never an abort
		default:
			return fmt.Errorf("server: opcode %s not valid in a batch", sub.Op)
		}
		*results = append(*results, res)
	}
	return nil
}

// ExecOne runs a single batch entry in its own transaction — the
// depth-1 path, and the re-run path when a whole batch failed with a
// genuine error ("first error doesn't poison later independent ops":
// each op then succeeds or fails on its own).
func (s *Store) ExecOne(th *tbtm.Thread, sub *MultiSub) (SubResult, error) {
	return ExecOneOn(s, th, sub)
}

// ExecOneOn is ExecOne over any KV implementation: the durable and
// replica wrappers route their per-op re-runs through their own
// Get/Set/Del/Cas so each op keeps its layer's semantics.
func ExecOneOn(kv KV, th *tbtm.Thread, sub *MultiSub) (SubResult, error) {
	res := SubResult{Status: wire.StatusOK}
	switch sub.Op {
	case wire.OpGet:
		v, ok, err := kv.Get(th, sub.Key)
		if err != nil {
			return res, err
		}
		res.Val, res.Present = v, ok
		if !ok {
			res.Status = wire.StatusNotFound
		}
	case wire.OpSet:
		if err := kv.Set(th, sub.Key, sub.Val); err != nil {
			return res, err
		}
	case wire.OpDel:
		ok, err := kv.Del(th, sub.Key)
		if err != nil {
			return res, err
		}
		res.Present = ok
	case wire.OpCas:
		ok, err := kv.Cas(th, sub.Key, sub.ExpectPresent, sub.Expect, sub.Val)
		if err != nil {
			return res, err
		}
		res.Present = ok
	default:
		return res, fmt.Errorf("server: opcode %s not valid in a batch", sub.Op)
	}
	return res, nil
}

// BTake blocks until key exists, then deletes and returns it; woken by
// shutdown it returns ErrServerClosed, and woken by the connection's
// cancel flag (the client hung up mid-park) it returns ErrClientGone
// WITHOUT consuming the key. The shutdown and cancel flags are read
// only on the empty path so they join exactly the parked footprint.
// On a durable store the park happens outside the checkpoint gate (see
// server/durable); here the whole wait-and-take is one transaction.
func (s *Store) BTake(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) (val []byte, err error) {
	err = th.AtomicSite(SiteBTake, func(tx tbtm.Tx) error {
		v, ok, e := s.GetTx(tx, key)
		if e != nil {
			return e
		}
		if !ok {
			if e := s.CheckLive(tx, cancel); e != nil {
				return e
			}
			return tbtm.Retry(tx)
		}
		if _, e := s.DelTx(tx, key); e != nil {
			return e
		}
		val = v
		return nil
	})
	return
}

// CheckLive returns the reason a blocked operation must give up: server
// shutdown or (when the caller watches one) a disconnected client. Both
// variables are read here, on the about-to-park path, so their commits
// wake the parked transaction.
func (s *Store) CheckLive(tx tbtm.Tx, cancel *tbtm.Var[bool]) error {
	halt, err := s.closed.Read(tx)
	if err != nil {
		return err
	}
	if halt {
		return ErrServerClosed
	}
	if cancel != nil {
		gone, err := cancel.Read(tx)
		if err != nil {
			return err
		}
		if gone {
			return ErrClientGone
		}
	}
	return nil
}

// Wait blocks until key's state differs from (oldPresent, old), then
// returns the new state; woken by shutdown it returns ErrServerClosed,
// by a client disconnect ErrClientGone (see BTake).
func (s *Store) Wait(th *tbtm.Thread, key string, oldPresent bool, old []byte, cancel *tbtm.Var[bool]) (val []byte, present bool, err error) {
	err = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		v, ok, e := s.GetTx(tx, key)
		if e != nil {
			return e
		}
		if ok != oldPresent || (ok && !bytes.Equal(v, old)) {
			val, present = v, ok
			return nil
		}
		if e := s.CheckLive(tx, cancel); e != nil {
			return e
		}
		return tbtm.Retry(tx)
	})
	return
}

// MarkClosed commits the shutdown flag, waking every parked client.
func (s *Store) MarkClosed(th *tbtm.Thread) error {
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return s.closed.Write(tx, true)
	})
}

// CopyBytes returns a private copy of b; transactional values must not
// alias the reusable frame buffer.
func CopyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
