package engine

import (
	"errors"
	"math/bits"
	"testing"
	"time"

	"tbtm/server/wire"
)

// TestOpMetricsSubMicrosecond pins the latency-bucket regression: an
// earlier revision bucketed microseconds, which collapsed every
// sub-µs op into bucket 0 and made the in-process fast path invisible
// in both STATS and /metrics. Buckets are log2 NANOSECONDS — sub-µs
// observations must land in distinct nonzero buckets.
func TestOpMetricsSubMicrosecond(t *testing.T) {
	var m Metrics

	m.RecordOp(wire.OpGet, 500*time.Nanosecond, nil)
	counts := m.OpLatency(wire.OpGet).Load()
	if counts[0] != 0 {
		t.Errorf("500ns op landed in bucket 0 — the µs-bucket regression")
	}
	want := bits.Len64(500) // [256ns, 512ns)
	if counts[want] != 1 {
		t.Errorf("500ns op: bucket[%d] = %d, want 1 (buckets: %v)", want, counts[want], counts)
	}

	// Sub-µs latencies of different magnitudes stay distinguishable.
	m.RecordOp(wire.OpSet, 100*time.Nanosecond, nil)
	m.RecordOp(wire.OpSet, 900*time.Nanosecond, nil)
	c := m.OpLatency(wire.OpSet).Load()
	b100, b900 := bits.Len64(100), bits.Len64(900)
	if b100 == b900 {
		t.Fatalf("test keys collide: both in bucket %d", b100)
	}
	if c[b100] != 1 || c[b900] != 1 {
		t.Errorf("100ns/900ns ops: bucket[%d]=%d bucket[%d]=%d, want 1 and 1",
			b100, c[b100], b900, c[b900])
	}

	// The snapshot carries the same resolution out to STATS: average in
	// µs as a float (not truncated to 0) and the raw ns-log2 buckets.
	m.RecordOp(wire.OpGet, 500*time.Nanosecond, errors.New("boom"))
	snap := m.Snapshot(2, 1)
	oc, ok := snap.Ops[wire.OpGet.String()]
	if !ok {
		t.Fatal("snapshot missing get")
	}
	if oc.Count != 2 || oc.Errors != 1 {
		t.Errorf("get counters: count=%d errors=%d, want 2 and 1", oc.Count, oc.Errors)
	}
	if oc.AvgUs <= 0 || oc.AvgUs >= 1 {
		t.Errorf("get AvgUs = %v, want in (0, 1) for 500ns ops", oc.AvgUs)
	}
	if len(oc.LatencyH) == 0 || oc.LatencyH[want] != 2 {
		t.Errorf("snapshot LatencyH[%d] = %v, want 2", want, oc.LatencyH)
	}
}
