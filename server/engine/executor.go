// The Thread-executor: the seam between "M connections" and "N engine
// Threads".
//
// The engine's scaling machinery is built around long-lived, per-worker
// Thread handles: a Thread owns its reusable transaction descriptor and
// read/write logs (PR1), an epoch slot and recycler pools for version
// reclamation (PR2), and a shard of the sharded statistics counters.
// Handing every TCP connection its own *tbtm.Thread would break all
// three at scale — ten thousand idle connections would mean ten
// thousand registered epoch slots to scan on every grace-period check
// and ten thousand stats shards to sum, and a reconnecting client would
// leak a descriptor set per connection since Thread state is retained
// for the TM's lifetime.
//
// The executor instead owns a bounded pool of Threads and leases them
// to requests. Two tranches with different lifetimes:
//
//   - fast leases serve non-blocking operations. They are held for one
//     begin→commit window, so a small pool (a few per core) saturates
//     the engine; requests beyond the pool queue FIFO, which is the
//     server's backpressure.
//
//   - blocking leases serve BTAKE/WAIT. A blocked operation PARKS
//     inside tbtm.Retry holding its lease: the park/wake protocol
//     revalidates and re-runs on the same Thread, whose descriptor and
//     waiter the parking lot references, so the lease cannot be
//     returned mid-park. Parked Threads are cheap by design — a parked
//     waiter holds only (object, Seq) pairs, no epoch pin, so a parked
//     lease never stalls the recycler (PR3) — which is why the blocking
//     tranche can be much larger than the fast one, and why parked
//     clients consume no engine CPU.
//
// A Lease moves between goroutines (handler to handler) but is used by
// at most one at a time; the pool channels provide the happens-before
// edge each handoff needs, preserving the engine's thread-confinement
// contract.
package engine

import (
	"context"
	"errors"
	"sync"
	"time"

	"tbtm"
	"tbtm/server/wire"
)

// Lease is temporary ownership of one engine Thread. The holder may run
// any number of transactions on Thread() and must Release exactly once;
// after Release the Thread must not be used.
type Lease struct {
	th   *tbtm.Thread
	pool chan *Lease
}

// Thread returns the leased engine thread.
func (l *Lease) Thread() *tbtm.Thread { return l.th }

// Executor leases a bounded pool of engine Threads to requests.
type Executor struct {
	tm       *tbtm.TM
	fast     chan *Lease
	blocking chan *Lease
	nFast    int
	nBlock   int
	done     chan struct{}
	closing  sync.Once
	m        *Metrics
}

// NewExecutor creates an executor over tm with the given tranche sizes
// (both must be >= 1). Threads are created eagerly so the steady state
// allocates nothing.
func NewExecutor(tm *tbtm.TM, fastLeases, blockingLeases int, m *Metrics) *Executor {
	if fastLeases < 1 {
		fastLeases = 1
	}
	if blockingLeases < 1 {
		blockingLeases = 1
	}
	if m == nil {
		m = &Metrics{}
	}
	e := &Executor{
		tm:       tm,
		fast:     make(chan *Lease, fastLeases),
		blocking: make(chan *Lease, blockingLeases),
		nFast:    fastLeases,
		nBlock:   blockingLeases,
		done:     make(chan struct{}),
		m:        m,
	}
	for i := 0; i < fastLeases; i++ {
		e.fast <- &Lease{th: tm.NewThread(), pool: e.fast}
	}
	for i := 0; i < blockingLeases; i++ {
		e.blocking <- &Lease{th: tm.NewThread(), pool: e.blocking}
	}
	return e
}

// Metrics returns the executor's metrics sink.
func (e *Executor) Metrics() *Metrics { return e.m }

// FastLeases returns the fast tranche size.
func (e *Executor) FastLeases() int { return e.nFast }

// BlockingLeases returns the blocking tranche size.
func (e *Executor) BlockingLeases() int { return e.nBlock }

// MetricsSnapshot captures the executor's counters with its pool sizes
// filled in.
func (e *Executor) MetricsSnapshot() MetricsSnapshot {
	return e.m.Snapshot(e.nFast, e.nBlock)
}

// Acquire leases a Thread, blocking when the tranche is exhausted.
// blocking selects the tranche: true for operations that may park
// (BTAKE/WAIT), false for everything else. Queued acquirers are served
// FIFO. Acquire fails with ctx.Err() when ctx ends first and
// ErrExecutorClosed when the executor closes; ctx may be nil for
// wait-forever.
func (e *Executor) Acquire(ctx context.Context, blocking bool) (*Lease, error) {
	pool := e.fast
	gauge := &e.m.fastInUse
	if blocking {
		pool = e.blocking
		gauge = &e.m.blockingInUse
	}
	e.m.acquires.Add(1)
	select {
	case l := <-pool:
		gauge.Add(1)
		return l, nil
	default:
	}
	// Slow path: queue with backpressure accounting.
	e.m.acquireWaits.Add(1)
	e.m.waiters.Add(1)
	t0 := time.Now()
	defer func() {
		e.m.waiters.Add(-1)
		ns := uint64(time.Since(t0).Nanoseconds())
		e.m.acquireWaitNs.Add(ns)
		e.m.leaseWaitH.Observe(ns)
	}()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case l := <-pool:
		gauge.Add(1)
		return l, nil
	case <-ctxDone:
		e.m.rejects.Add(1)
		return nil, ctx.Err()
	case <-e.done:
		e.m.rejects.Add(1)
		return nil, ErrExecutorClosed
	}
}

// Release returns a lease to its pool.
func (e *Executor) Release(l *Lease) {
	if l.pool == e.fast {
		e.m.fastInUse.Add(-1)
	} else {
		e.m.blockingInUse.Add(-1)
	}
	l.pool <- l
}

// Do leases a Thread, runs fn on it, records the operation's latency
// and outcome under op, and releases the lease — even when fn blocks
// for a long time in a parked transaction, the lease is pinned to fn
// for its whole duration. ErrServerClosed outcomes are not counted as
// errors (shutdown wakeups are expected).
func (e *Executor) Do(ctx context.Context, op wire.Op, blocking bool, fn func(*tbtm.Thread) error) error {
	l, err := e.Acquire(ctx, blocking)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = fn(l.th)
	merr := err
	if errors.Is(merr, ErrServerClosed) {
		merr = nil
	}
	e.m.ops[op].record(time.Since(t0), merr)
	e.Release(l)
	return err
}

// DoBatch is Do for a pipelined batch of n operations sharing one fast
// lease and one begin→commit window: the per-op lease acquire/release
// and per-op commit that Do pays become per-batch costs. It records the
// batch under the executor's batch metrics and returns the elapsed
// execution time so the caller can attribute amortized per-op latency.
func (e *Executor) DoBatch(ctx context.Context, n int, fn func(*tbtm.Thread) error) (time.Duration, error) {
	l, err := e.Acquire(ctx, false)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	err = fn(l.th)
	d := time.Since(t0)
	merr := err
	if errors.Is(merr, ErrServerClosed) {
		merr = nil
	}
	e.m.batch.record(d, merr)
	e.m.batchedOps.Add(uint64(n))
	e.Release(l)
	return d, err
}

// Close unblocks every queued Acquire with ErrExecutorClosed and makes
// future Acquires fail. Leases already granted stay valid until
// released; Close does not wait for them (the server drains in-flight
// requests itself, and parked holders are woken by the store's shutdown
// flag, not by the executor).
func (e *Executor) Close() {
	e.closing.Do(func() { close(e.done) })
}
