package engine

import (
	"testing"

	"tbtm"
	"tbtm/server/wire"
)

// The engine layer's allocation contract. The STM's warm paths are
// zero-alloc (root alloc_test.go); the executor + store must not
// squander that between lease and bucket:
//
//  1. Site strings are package constants, so AtomicSite's classifier
//     lookup never allocates a key — building "set:"+key per request
//     would regress this pin.
//  2. The executor's Acquire/Do/Release cycle is channel+atomics only.
//  3. A warm single-key read through executor + classifier + store
//     allocates NOTHING on LSA; a warm overwrite allocates only what
//     genuinely escapes (the copied bucket slice and its interface
//     box), independent of request count.
const (
	maxAllocsWarmGet = 0
	// The overwrite path rebuilds the bucket's []mapEntry slice (one
	// alloc) and boxes it into the Object's `any` slot (a second); the
	// skiplist index is untouched when the key already exists.
	maxAllocsWarmSet = 2
)

func newAllocEngine(t *testing.T, fast, blocking int) (*Store, *Executor) {
	t.Helper()
	tm, err := tbtm.New(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(0),
	)
	if err != nil {
		t.Fatalf("tbtm.New: %v", err)
	}
	return NewStore(tm, 1024), NewExecutor(tm, fast, blocking, &Metrics{})
}

func TestWarmServerOpAllocs(t *testing.T) {
	store, e := newAllocEngine(t, 2, 1)
	val := []byte("payload")

	// Prebound closures, as the conn handler holds them.
	setFn := func(th *tbtm.Thread) error {
		return store.Set(th, "hot", val)
	}
	getFn := func(th *tbtm.Thread) error {
		_, _, err := store.Get(th, "hot")
		return err
	}
	doSet := func() {
		if err := e.Do(nil, wire.OpSet, false, setFn); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	doGet := func() {
		if err := e.Do(nil, wire.OpGet, false, getFn); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	for i := 0; i < 64; i++ { // warm descriptors, pools, classifier site
		doSet()
		doGet()
	}
	if n := testing.AllocsPerRun(200, doGet); n > maxAllocsWarmGet {
		t.Errorf("warm server GET: %.1f allocs/op, want <= %d", n, maxAllocsWarmGet)
	}
	if n := testing.AllocsPerRun(200, doSet); n > maxAllocsWarmSet {
		t.Errorf("warm server SET: %.1f allocs/op, want <= %d", n, maxAllocsWarmSet)
	}
}

// TestWarmBlockingOpAllocs pins the non-parking fast path of the
// blocking opcodes: a WAIT whose expectation is already stale answers
// without parking and without allocating (LSA, warm).
func TestWarmBlockingOpAllocs(t *testing.T) {
	store, e := newAllocEngine(t, 1, 1)
	if err := e.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
		return store.Set(th, "w", []byte("current"))
	}); err != nil {
		t.Fatal(err)
	}
	old := []byte("stale")
	waitFn := func(th *tbtm.Thread) error {
		_, _, err := store.Wait(th, "w", true, old, nil)
		return err
	}
	doWait := func() {
		if err := e.Do(nil, wire.OpWait, true, waitFn); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		doWait()
	}
	if n := testing.AllocsPerRun(200, doWait); n > 0 {
		t.Errorf("warm non-parking WAIT: %.1f allocs/op, want 0", n)
	}
}
