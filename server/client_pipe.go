// Pipe: the pipelined client API.
//
// A Pipe keeps many requests outstanding on one connection: enqueue
// calls build frames into the connection's write buffer without
// flushing, Flush pushes the window to the server in one write, and
// Recv returns responses one at a time. Non-blocking responses arrive
// in request order; blocking ones (BTake, Wait) arrive whenever they
// complete — the Seq field of each Reply is what matches a response to
// its request either way.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Reply is one pipelined response, decoded generically. Val is valid
// only until the next Recv on the Pipe.
type Reply struct {
	// Seq echoes the sequence ID the enqueue call returned.
	Seq uint64
	// Op is the opcode of the matched request.
	Op Op
	// Status is the wire status byte.
	Status Status
	// OK is the opcode's boolean outcome: found (Get), deleted (Del),
	// swapped (Cas), present (Wait), committed (Multi); true on success
	// for Ping/Set/BTake.
	OK bool
	// Val is the returned value for Get/BTake/Wait (nil otherwise).
	Val []byte
	// Err is the decoded error for StatusError/StatusClosed replies.
	Err error
}

// Pipe pipelines requests over its Client's connection. It shares the
// Client's buffers and sequence counter: interleave synchronous Client
// calls and Pipe windows freely, but only when no pipelined request is
// outstanding (the synchronous reader would swallow pipelined
// responses). Like the Client, a Pipe is not safe for concurrent use.
type Pipe struct {
	c       *Client
	pending map[uint64]Op
}

// Pipe returns a pipelined view of the client's connection.
func (c *Client) Pipe() *Pipe {
	return &Pipe{c: c, pending: make(map[uint64]Op)}
}

// Outstanding reports how many requests await a Recv.
func (p *Pipe) Outstanding() int { return len(p.pending) }

// enqueue writes the built request frame into the client's buffered
// writer without flushing and records it as pending.
func (p *Pipe) enqueue(req []byte) uint64 {
	c := p.c
	var op Op
	if _, n := binary.Uvarint(req); n > 0 && n < len(req) {
		op = Op(req[n])
	}
	c.out = req[:0]
	if err := writeFrame(c.bw, &c.hdr, req); err != nil {
		// The write error will resurface on Flush/Recv; the request still
		// counts as pending so Recv's bookkeeping stays consistent.
		_ = err
	}
	p.pending[c.seq] = op
	return c.seq
}

// Ping enqueues a ping.
func (p *Pipe) Ping() uint64 { return p.enqueue(p.c.newReq(OpPing)) }

// Get enqueues a read of key.
func (p *Pipe) Get(key string) uint64 {
	return p.enqueue(appendString(p.c.newReq(OpGet), key))
}

// Set enqueues key = val.
func (p *Pipe) Set(key string, val []byte) uint64 {
	req := appendString(p.c.newReq(OpSet), key)
	return p.enqueue(appendBytes(req, val))
}

// Del enqueues a delete of key.
func (p *Pipe) Del(key string) uint64 {
	return p.enqueue(appendString(p.c.newReq(OpDel), key))
}

// Cas enqueues a compare-and-swap (see Client.Cas for semantics).
func (p *Pipe) Cas(key string, expect []byte, expectPresent bool, val []byte) uint64 {
	req := appendString(p.c.newReq(OpCas), key)
	req = append(req, boolByte(expectPresent))
	req = appendBytes(req, expect)
	return p.enqueue(appendBytes(req, val))
}

// BTake enqueues a blocking take. Its Reply may arrive after replies
// to later requests.
func (p *Pipe) BTake(key string) uint64 {
	return p.enqueue(appendString(p.c.newReq(OpBTake), key))
}

// Wait enqueues a blocking wait-for-change (see Client.Wait). Its
// Reply may arrive after replies to later requests.
func (p *Pipe) Wait(key string, old []byte, oldPresent bool) uint64 {
	req := appendString(p.c.newReq(OpWait), key)
	req = append(req, boolByte(oldPresent))
	return p.enqueue(appendBytes(req, old))
}

// Multi enqueues a script (see Client.MultiExec). The Reply's OK is
// the committed flag; per-op results are not decoded on the pipelined
// path.
func (p *Pipe) Multi(ops []MultiOp) (uint64, error) {
	req := p.c.newReq(OpMulti)
	req = binary.AppendUvarint(req, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		req = append(req, byte(op.Op))
		req = appendString(req, op.Key)
		switch op.Op {
		case OpGet, OpDel:
		case OpSet:
			req = appendBytes(req, op.Val)
		case OpCas:
			req = append(req, boolByte(op.ExpectPresent))
			req = appendBytes(req, op.Expect)
			req = appendBytes(req, op.Val)
		default:
			return 0, fmt.Errorf("server: opcode %s not valid in multi", op.Op)
		}
	}
	return p.enqueue(req), nil
}

// Flush sends every enqueued request to the server in one write.
func (p *Pipe) Flush() error { return p.c.bw.Flush() }

// Recv reads the next response. It flushes first, so a bare
// enqueue-then-Recv loop cannot deadlock on an unsent window. Reply.Val
// is valid until the next Recv.
func (p *Pipe) Recv() (Reply, error) {
	c := p.c
	if len(p.pending) == 0 {
		return Reply{}, errors.New("server: Recv with no outstanding requests")
	}
	if err := c.bw.Flush(); err != nil {
		return Reply{}, err
	}
	payload, buf, err := readFrame(c.br, &c.hdr, c.in, c.maxFrame)
	c.in = buf
	if err != nil {
		return Reply{}, err
	}
	seq, body, err := takeUvarint(payload)
	if err != nil {
		return Reply{}, err
	}
	op, ok := p.pending[seq]
	if !ok {
		return Reply{}, fmt.Errorf("server: response for unknown sequence %d", seq)
	}
	delete(p.pending, seq)
	st, body, err := takeByte(body)
	if err != nil {
		return Reply{}, err
	}
	r := Reply{Seq: seq, Op: op, Status: Status(st)}
	if err := statusErr(r.Status, body); err != nil {
		r.Err = err
		return r, nil
	}
	switch op {
	case OpPing, OpSet:
		r.OK = r.Status == StatusOK
	case OpGet, OpBTake:
		if r.Status == StatusOK {
			r.OK = true
			r.Val, _, err = takeBytes(body)
		}
	case OpDel, OpCas:
		var b byte
		if b, _, err = takeByte(body); err == nil {
			r.OK = b != 0
		}
	case OpWait:
		var b byte
		if b, body, err = takeByte(body); err == nil && b != 0 {
			r.OK = true
			r.Val, _, err = takeBytes(body)
		}
	case OpMulti:
		var b byte
		if b, _, err = takeByte(body); err == nil {
			r.OK = b != 0
		}
	case OpStats:
		r.OK = true
		r.Val, _, err = takeBytes(body)
	}
	if err != nil {
		return Reply{}, err
	}
	return r, nil
}
