// Package server is tbtmd: a transactional key-value server over the
// tbtm engine, speaking a pipelined length-prefixed binary protocol.
//
// The package is a thin COMPOSITION ROOT over four layers, each its own
// package with no knowledge of the ones above it:
//
//	server/wire      protocol: opcodes, statuses, framing, parsing
//	server/engine    operations: store, executor leases, batching, MULTI
//	server/durable   durability: WAL gating, checkpoints, degradation
//	server/repl      replication: WAL shipping, replica application
//	server/transport connection I/O: event loops, bursts, batching
//
// Server wires them together: it builds the engine and store, wraps the
// store durable (Config.DataDir) or replica-read-only (Config.ReplicaOf),
// hands the result to the transport as an engine.KV, and implements
// transport.Host — the narrow callback surface (shutdown flag, in-flight
// accounting, stats document, replication streams) the transport needs
// from the world above it. The client (Client, Pipe) lives here too,
// speaking server/wire types re-exported for compatibility.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/telemetry"
	"tbtm/internal/wal"
	"tbtm/server/durable"
	"tbtm/server/engine"
	"tbtm/server/repl"
	"tbtm/server/transport"
	"tbtm/server/wire"
)

// Config configures a Server. The zero value is usable: ZLinearizable,
// auto-sized lease pools, 1024 hash buckets.
type Config struct {
	// Consistency selects the engine's criterion (0 = ZLinearizable).
	// The server works on every backend; the acceptance workloads run at
	// least Linearizable (LSA) and Serializable (S-STM).
	Consistency tbtm.Consistency
	// Leases sizes the fast (non-blocking) lease tranche; 0 means
	// 2*GOMAXPROCS. See the executor's package comment for the contract.
	Leases int
	// BlockingLeases sizes the blocking tranche (BTAKE/WAIT); 0 means
	// 64. Parked leases hold no epoch pin, so this can be generous.
	BlockingLeases int
	// Buckets sizes the value hash map (0 = 1024).
	Buckets int
	// MaxFrame bounds request payloads (0 = DefaultMaxFrame).
	MaxFrame int
	// LongOpens overrides the classifier's long-promotion threshold
	// (0 = the adaptive package default).
	LongOpens float64
	// EventLoops selects the connection I/O driver. 0 (the default)
	// means one shared reader event loop per core (GOMAXPROCS) on
	// platforms with a poller the server can drive directly (Linux
	// epoll), and the portable goroutine-per-connection driver
	// elsewhere; > 0 forces that many event loops; < 0 forces the
	// portable driver everywhere. Connections parked in blocking ops
	// never occupy a loop either way — blocking work always runs on
	// dedicated goroutines.
	EventLoops int
	// MaxBatch caps how many consecutive non-blocking single-key ops
	// from one pipelined burst are executed under a single lease and
	// commit window (0 = 64).
	MaxBatch int
	// TMOptions are appended to the server's own engine options;
	// invariant-bearing options (WithBlockingRetry, WithAutoClassify,
	// vector-clock WithThreads sizing) are applied after, so they win.
	TMOptions []tbtm.Option

	// DataDir enables durability: every update is appended to a
	// write-ahead log under this directory before it is acknowledged
	// (per Durability), consistent checkpoints bound replay, and New
	// recovers the directory's state before serving. Empty = in-memory
	// only. Durability requires a scalar-clock consistency criterion
	// (it logs engine commit ticks); CausallySerializable and
	// Serializable are refused.
	DataDir string
	// Durability selects what an acknowledged update means with
	// DataDir set: "strict" (default; fsynced before the reply),
	// "relaxed" (written to the OS before the reply, fsynced in the
	// background), or "none" (replied after the in-memory commit; the
	// log is best-effort).
	Durability string
	// FsyncEvery / FsyncInterval tune relaxed-mode background fsyncs
	// (0 = the WAL defaults: 256 records / 5ms).
	FsyncEvery    int
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (0 = 8 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a checkpoint once this many bytes of WAL
	// records accumulated since the last one (0 = 64 MiB).
	CheckpointBytes int64
	// WALFS overrides the filesystem the WAL writes through (fault
	// injection and crash tests); nil means the real disk.
	WALFS wal.FS

	// ReplicaOf turns the server into a read replica of the primary at
	// this address: it bootstraps from the primary's newest checkpoint,
	// applies shipped WAL records as ordinary transactions, and serves
	// reads (GET/RANGE/read-only MULTI/WAIT) from consistent local
	// snapshots; writes answer StatusReadOnly with the replica reason.
	// Mutually exclusive with DataDir — the replica's durability story
	// IS the primary's WAL. The primary must itself be durable.
	ReplicaOf string
	// ReplicaBackoff is the replica's initial reconnect delay (0 =
	// 50ms, doubling to 2s). Tests shrink it.
	ReplicaBackoff time.Duration

	// RecorderEvents sizes each flight-recorder ring (0 =
	// telemetry.DefaultRingEvents). The recorder is armed by default —
	// recording one phase event is a mutex-guarded store into a
	// preallocated slot; RecorderOff starts it disarmed, reducing every
	// record site to one atomic load.
	RecorderEvents int
	RecorderOff    bool
	// SlowOp logs any completed op slower than this threshold with its
	// phase breakdown reconstructed from the flight recorder (0
	// disables). SlowOpWriter overrides the log sink (default stderr).
	SlowOp       time.Duration
	SlowOpWriter io.Writer
}

// StatsReply is the JSON document answered to OpStats.
type StatsReply struct {
	Engine tbtm.Stats `json:"engine"`
	// Aborts breaks the engine's failed attempts down by the
	// internal/metrics taxonomy (conflict, explicit abort, snapshot
	// miss, other).
	Aborts   tbtm.AbortReasons `json:"aborts"`
	Metrics  MetricsSnapshot   `json:"metrics"`
	Conns    int64             `json:"conns"`
	UptimeMs int64             `json:"uptime_ms"`
	// WAL is present only on durable servers (Config.DataDir set).
	WAL *WALStatsReply `json:"wal,omitempty"`
	// Repl is present only on replicas (Config.ReplicaOf set).
	Repl *repl.ReplStats `json:"repl,omitempty"`
}

// WALStatsReply is the durability section of StatsReply: the log's
// counters plus the read-only degradation gauge.
type WALStatsReply struct {
	wal.StatsSnapshot
	ReadOnly bool `json:"read_only"`
}

// Server is a tbtmd instance: one engine, one executor, one store, any
// number of listeners (normally one).
type Server struct {
	cfg   Config
	tcfg  transport.Config
	tm    *tbtm.TM
	exec  *engine.Executor
	store *engine.Store
	// kv is the serving surface the transport drives: the store itself,
	// its durable wrapper, or the replica's read-only wrapper.
	kv engine.KV

	// sysTh runs the server's own transactions (the shutdown commit). It
	// is dedicated: at shutdown every pool lease may be parked.
	sysTh *tbtm.Thread

	// cancelTh commits per-connection cancel flags when connection
	// teardown finds parked blocking ops; guarded by cancelMu (Thread
	// handles are not concurrency-safe, and teardowns are rare).
	cancelMu sync.Mutex
	cancelTh *tbtm.Thread

	// Durability state (nil without Config.DataDir): the wrapped store,
	// what recovery reconstructed, and the background checkpointer.
	dur       *durable.Store
	recovered *wal.Recovered
	ckptStop  func()

	// replica is the replication follower (nil unless Config.ReplicaOf).
	replica *repl.Replica

	// rec is the flight recorder; reg the unified metrics registry over
	// every layer's counters (built lazily — WAL and replica families
	// depend on what New wired up).
	rec     *telemetry.Recorder
	regOnce sync.Once
	reg     *telemetry.Registry

	start    time.Time
	closed   atomic.Bool
	inflight atomic.Int64 // requests between decode and response write
	conns    atomic.Int64

	// loops drives connection I/O on platforms with shared event loops;
	// nil (or declining Attach) falls back to goroutine-per-connection.
	loopOnce sync.Once
	loops    *transport.LoopSet

	mu      sync.Mutex
	ln      net.Listener
	open    map[net.Conn]*transport.Conn
	serving sync.WaitGroup
}

// New builds a Server (and its TM) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Consistency == 0 {
		cfg.Consistency = tbtm.ZLinearizable
	}
	if cfg.Leases <= 0 {
		cfg.Leases = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.BlockingLeases <= 0 {
		cfg.BlockingLeases = 64
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.DataDir != "" && cfg.ReplicaOf != "" {
		return nil, fmt.Errorf("server: DataDir and ReplicaOf are mutually exclusive; a replica's durability is the primary's WAL")
	}
	if cfg.DataDir != "" &&
		(cfg.Consistency == tbtm.CausallySerializable || cfg.Consistency == tbtm.Serializable) {
		return nil, fmt.Errorf("server: durability (DataDir) requires a scalar-clock consistency criterion; %v uses vector time and has no total commit-tick order for WAL replay", cfg.Consistency)
	}
	opts := []tbtm.Option{tbtm.WithConsistency(cfg.Consistency)}
	opts = append(opts, cfg.TMOptions...)
	// The server's invariants go last so they cannot be overridden:
	// blocking ops park (never spin), update sites classify themselves,
	// and vector time bases are sized for every pooled Thread plus the
	// system, cancel, and replica-applier threads.
	opts = append(opts,
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(cfg.LongOpens),
	)
	if cfg.Consistency == tbtm.CausallySerializable || cfg.Consistency == tbtm.Serializable {
		opts = append(opts, tbtm.WithThreads(cfg.Leases+cfg.BlockingLeases+3))
	}
	tm, err := tbtm.New(opts...)
	if err != nil {
		return nil, err
	}
	rec := telemetry.NewRecorder(cfg.RecorderEvents)
	rec.SetOpNames(func(op uint8) string { return wire.Op(op).String() })
	if cfg.RecorderOff {
		rec.Arm(false)
	}
	if cfg.SlowOp > 0 {
		rec.SetSlowOp(cfg.SlowOp, cfg.SlowOpWriter)
	}
	s := &Server{
		cfg:   cfg,
		tcfg:  transport.Config{MaxFrame: cfg.MaxFrame, MaxBatch: cfg.MaxBatch, Recorder: rec},
		tm:    tm,
		store: engine.NewStore(tm, cfg.Buckets),
		start: time.Now(),
		open:  make(map[net.Conn]*transport.Conn),
		rec:   rec,
	}
	s.kv = s.store
	s.exec = engine.NewExecutor(tm, cfg.Leases, cfg.BlockingLeases, &engine.Metrics{})
	s.sysTh = tm.NewThread()
	s.cancelTh = tm.NewThread()
	if cfg.DataDir != "" {
		dur, rec, err := durable.Open(s.store, s.sysTh, durable.Config{
			Dir:           cfg.DataDir,
			FS:            cfg.WALFS,
			Mode:          cfg.Durability,
			FsyncEvery:    cfg.FsyncEvery,
			FsyncInterval: cfg.FsyncInterval,
			SegmentBytes:  cfg.SegmentBytes,
		})
		if err != nil {
			return nil, err
		}
		s.dur, s.recovered = dur, rec
		s.kv = dur
		s.ckptStop = dur.StartCheckpointer(tm.NewThread(), cfg.CheckpointBytes)
	}
	if cfg.ReplicaOf != "" {
		s.kv = repl.NewReadOnlyKV(s.store)
		s.replica = repl.StartReplica(repl.ReplicaConfig{
			Primary:  cfg.ReplicaOf,
			Store:    s.store,
			Thread:   tm.NewThread(),
			MaxFrame: cfg.MaxFrame,
			Backoff:  cfg.ReplicaBackoff,
			Ring:     rec.Ring(),
		})
	}
	return s, nil
}

// TM returns the server's engine (for embedding servers in tests and
// examples).
func (s *Server) TM() *tbtm.TM { return s.tm }

// Executor returns the server's Thread-executor.
func (s *Server) Executor() *Executor { return s.exec }

// Recovery describes what durable startup reconstructed (nil on
// in-memory servers).
func (s *Server) Recovery() *wal.Recovered { return s.recovered }

// ReplicaStats snapshots the replication follower's gauges (zero value
// on non-replicas).
func (s *Server) ReplicaStats() repl.ReplStats {
	if s.replica == nil {
		return repl.ReplStats{}
	}
	return s.replica.Stats()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.loopOnce.Do(func() {
		n := s.cfg.EventLoops
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > 0 {
			// A loop-construction error (fd limits) is not fatal: the
			// portable driver serves every connection instead.
			if loops, err := transport.NewLoopSet(s, n, s.rec); err == nil {
				s.loops = loops
			}
		}
	})
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		cn := transport.NewConn(s, s.tcfg, s.exec, s.kv, conn)
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.open[conn] = cn
		s.serving.Add(1)
		s.mu.Unlock()
		s.conns.Add(1)
		if !s.loops.Attach(cn) {
			go transport.ServeFallback(cn)
		}
	}
}

// Close shuts the server down gracefully: stop accepting, commit the
// shutdown flag (which wakes every parked BTAKE/WAIT — they answer
// StatusClosed), drain in-flight responses, then tear connections down
// and stop the event loops. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	// Wake parked clients; their handlers write StatusClosed responses.
	if err := s.kv.MarkClosed(s.sysTh); err != nil {
		return err
	}
	// Drain: wait (bounded) for in-flight requests to write responses.
	for deadline := time.Now().Add(5 * time.Second); s.inflight.Load() > 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Anything still queued for a lease answers StatusClosed from here.
	s.exec.Close()
	// Hand connections back to their owning drivers: mark them dead and
	// shut the READ side, which surfaces as EOF in the driver. The owner
	// closes the socket itself, so a shared event loop never races a
	// reused fd number.
	s.mu.Lock()
	for c, cn := range s.open {
		cn.MarkDead()
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.loops.Wake()
	// A driver can still be wedged writing to a client that stopped
	// reading; after a grace period close those sockets outright.
	done := make(chan struct{})
	go func() {
		s.serving.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s.mu.Lock()
		for c := range s.open {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.loops.Wake()
	s.loops.Wait()
	// Replica shutdown: the applier disconnects from the primary and
	// stops; readers are gone by now.
	if s.replica != nil {
		s.replica.Stop()
	}
	// Durable shutdown: every connection and lease is drained by now, so
	// no appender races the close. The WAL drains its open batch, fsyncs
	// and closes the active segment — a clean close leaves nothing for
	// the next recovery to truncate.
	if s.ckptStop != nil {
		s.ckptStop()
	}
	if s.dur != nil {
		s.dur.Close()
	}
	return nil
}

// The transport.Host implementation: the callback surface connections
// use to reach the composition root.

// Closed reports server shutdown to the transport.
func (s *Server) Closed() bool { return s.closed.Load() }

// InflightAdd tracks requests between decode and response write.
func (s *Server) InflightAdd(delta int64) { s.inflight.Add(delta) }

// NewCancelVar allocates a connection's transactional hang-up flag.
func (s *Server) NewCancelVar() *tbtm.Var[bool] { return tbtm.NewVar(s.tm, false) }

// CancelBlocked commits a connection's hang-up flag, waking its parked
// blocking ops.
func (s *Server) CancelBlocked(v *tbtm.Var[bool]) {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	_ = s.cancelTh.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return v.Write(tx, true)
	})
}

// StatsJSON renders the OpStats reply document.
func (s *Server) StatsJSON() ([]byte, error) {
	reply := StatsReply{
		Engine:   s.tm.Stats(),
		Aborts:   s.tm.AbortReasons(),
		Metrics:  s.exec.MetricsSnapshot(),
		Conns:    s.conns.Load(),
		UptimeMs: time.Since(s.start).Milliseconds(),
	}
	if s.dur != nil {
		reply.WAL = &WALStatsReply{
			StatsSnapshot: s.dur.Log().Stats(),
			ReadOnly:      s.dur.ReadOnly(),
		}
	}
	if s.replica != nil {
		rs := s.replica.Stats()
		reply.Repl = &rs
	}
	return json.Marshal(&reply)
}

// ConnDone deregisters a torn-down connection.
func (s *Server) ConnDone(cn *transport.Conn) {
	s.mu.Lock()
	delete(s.open, cn.NetConn())
	s.mu.Unlock()
	s.conns.Add(-1)
	s.serving.Done()
}

// TraceJSON dumps the flight recorder — the OpTrace reply and the
// debug endpoint's /trace document.
func (s *Server) TraceJSON(max int) ([]byte, error) {
	return s.rec.DumpJSON(max)
}

// Replicate serves one OpReplicate subscription: durable primaries ship
// their WAL, everything else refuses (an in-memory server has no log to
// ship, and a replica must not be chained off — its applier is not a
// WAL).
func (s *Server) Replicate(st *transport.Stream, afterSeq uint64) error {
	if s.dur == nil {
		return fmt.Errorf("server: not a durable primary; replication needs -data-dir")
	}
	return repl.ServePrimary(s.dur.Log(), st, afterSeq)
}

// ParseConsistency maps a command-line name to a consistency criterion.
func ParseConsistency(name string) (tbtm.Consistency, error) {
	switch strings.ToLower(name) {
	case "lsa", "linearizable":
		return tbtm.Linearizable, nil
	case "single", "tl2", "singleversion":
		return tbtm.SingleVersion, nil
	case "causal", "cstm", "causallyserializable":
		return tbtm.CausallySerializable, nil
	case "serializable", "sstm":
		return tbtm.Serializable, nil
	case "zlin", "zstm", "zlinearizable":
		return tbtm.ZLinearizable, nil
	case "si", "sistm", "snapshotisolation":
		return tbtm.SnapshotIsolation, nil
	}
	return 0, fmt.Errorf("server: unknown consistency %q (lsa|single|causal|serializable|zlin|si)", name)
}
