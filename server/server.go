package server

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/wal"
)

// Config configures a Server. The zero value is usable: ZLinearizable,
// auto-sized lease pools, 1024 hash buckets.
type Config struct {
	// Consistency selects the engine's criterion (0 = ZLinearizable).
	// The server works on every backend; the acceptance workloads run at
	// least Linearizable (LSA) and Serializable (S-STM).
	Consistency tbtm.Consistency
	// Leases sizes the fast (non-blocking) lease tranche; 0 means
	// 2*GOMAXPROCS. See the executor's package comment for the contract.
	Leases int
	// BlockingLeases sizes the blocking tranche (BTAKE/WAIT); 0 means
	// 64. Parked leases hold no epoch pin, so this can be generous.
	BlockingLeases int
	// Buckets sizes the value hash map (0 = 1024).
	Buckets int
	// MaxFrame bounds request payloads (0 = DefaultMaxFrame).
	MaxFrame int
	// LongOpens overrides the classifier's long-promotion threshold
	// (0 = the adaptive package default).
	LongOpens float64
	// EventLoops selects the connection I/O driver. 0 (the default)
	// means one shared reader event loop per core (GOMAXPROCS) on
	// platforms with a poller the server can drive directly (Linux
	// epoll), and the portable goroutine-per-connection driver
	// elsewhere; > 0 forces that many event loops; < 0 forces the
	// portable driver everywhere. Connections parked in blocking ops
	// never occupy a loop either way — blocking work always runs on
	// dedicated goroutines.
	EventLoops int
	// MaxBatch caps how many consecutive non-blocking single-key ops
	// from one pipelined burst are executed under a single lease and
	// commit window (0 = 64).
	MaxBatch int
	// TMOptions are appended to the server's own engine options;
	// invariant-bearing options (WithBlockingRetry, WithAutoClassify,
	// vector-clock WithThreads sizing) are applied after, so they win.
	TMOptions []tbtm.Option

	// DataDir enables durability: every update is appended to a
	// write-ahead log under this directory before it is acknowledged
	// (per Durability), consistent checkpoints bound replay, and New
	// recovers the directory's state before serving. Empty = in-memory
	// only. Durability requires a scalar-clock consistency criterion
	// (it logs engine commit ticks); CausallySerializable and
	// Serializable are refused.
	DataDir string
	// Durability selects what an acknowledged update means with
	// DataDir set: "strict" (default; fsynced before the reply),
	// "relaxed" (written to the OS before the reply, fsynced in the
	// background), or "none" (replied after the in-memory commit; the
	// log is best-effort).
	Durability string
	// FsyncEvery / FsyncInterval tune relaxed-mode background fsyncs
	// (0 = the WAL defaults: 256 records / 5ms).
	FsyncEvery    int
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (0 = 8 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a checkpoint once this many bytes of WAL
	// records accumulated since the last one (0 = 64 MiB).
	CheckpointBytes int64
	// WALFS overrides the filesystem the WAL writes through (fault
	// injection and crash tests); nil means the real disk.
	WALFS wal.FS
}

// StatsReply is the JSON document answered to OpStats.
type StatsReply struct {
	Engine   tbtm.Stats      `json:"engine"`
	Metrics  MetricsSnapshot `json:"metrics"`
	Conns    int64           `json:"conns"`
	UptimeMs int64           `json:"uptime_ms"`
	// WAL is present only on durable servers (Config.DataDir set).
	WAL *WALStatsReply `json:"wal,omitempty"`
}

// WALStatsReply is the durability section of StatsReply: the log's
// counters plus the read-only degradation gauge.
type WALStatsReply struct {
	wal.StatsSnapshot
	ReadOnly bool `json:"read_only"`
}

// Server is a tbtmd instance: one engine, one executor, one store, any
// number of listeners (normally one).
type Server struct {
	cfg      Config
	maxBatch int
	tm       *tbtm.TM
	exec     *Executor
	store    store

	// sysTh runs the server's own transactions (the shutdown commit). It
	// is dedicated: at shutdown every pool lease may be parked.
	sysTh *tbtm.Thread

	// cancelTh commits per-connection cancel flags when connection
	// teardown finds parked blocking ops; guarded by cancelMu (Thread
	// handles are not concurrency-safe, and teardowns are rare).
	cancelMu sync.Mutex
	cancelTh *tbtm.Thread

	// Durability state (nil / zero without Config.DataDir): the WAL,
	// what recovery reconstructed, and the checkpointer's thread and
	// lifecycle. The checkpoint gate itself lives in store.dur.
	wlog      *wal.Log
	recovered *wal.Recovered
	ckptTh    *tbtm.Thread
	ckptBytes int64
	ckptStop  chan struct{}
	ckptDone  chan struct{}

	start    time.Time
	closed   atomic.Bool
	inflight atomic.Int64 // requests between decode and response write
	conns    atomic.Int64

	// Connection I/O drivers: shared event loops (Linux) or one
	// goroutine per connection (portable fallback).
	loopOnce sync.Once
	loops    []*evloop
	loopIdx  atomic.Uint32
	loopWG   sync.WaitGroup

	mu      sync.Mutex
	ln      net.Listener
	open    map[net.Conn]*pconn
	serving sync.WaitGroup
}

// New builds a Server (and its TM) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Consistency == 0 {
		cfg.Consistency = tbtm.ZLinearizable
	}
	if cfg.Leases <= 0 {
		cfg.Leases = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.BlockingLeases <= 0 {
		cfg.BlockingLeases = 64
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.DataDir != "" &&
		(cfg.Consistency == tbtm.CausallySerializable || cfg.Consistency == tbtm.Serializable) {
		return nil, fmt.Errorf("server: durability (DataDir) requires a scalar-clock consistency criterion; %v uses vector time and has no total commit-tick order for WAL replay", cfg.Consistency)
	}
	opts := []tbtm.Option{tbtm.WithConsistency(cfg.Consistency)}
	opts = append(opts, cfg.TMOptions...)
	// The server's invariants go last so they cannot be overridden:
	// blocking ops park (never spin), update sites classify themselves,
	// and vector time bases are sized for every pooled Thread plus the
	// system thread.
	opts = append(opts,
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(cfg.LongOpens),
	)
	if cfg.Consistency == tbtm.CausallySerializable || cfg.Consistency == tbtm.Serializable {
		opts = append(opts, tbtm.WithThreads(cfg.Leases+cfg.BlockingLeases+2))
	}
	tm, err := tbtm.New(opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		maxBatch: cfg.MaxBatch,
		tm:       tm,
		store:    newStore(tm, cfg.Buckets),
		start:    time.Now(),
		open:     make(map[net.Conn]*pconn),
	}
	s.exec = NewExecutor(tm, cfg.Leases, cfg.BlockingLeases, &Metrics{})
	s.sysTh = tm.NewThread()
	s.cancelTh = tm.NewThread()
	if cfg.DataDir != "" {
		if err := s.enableDurability(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// TM returns the server's engine (for embedding servers in tests and
// examples).
func (s *Server) TM() *tbtm.TM { return s.tm }

// Executor returns the server's Thread-executor.
func (s *Server) Executor() *Executor { return s.exec }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.loopOnce.Do(func() {
		n := s.cfg.EventLoops
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > 0 {
			// A loop-construction error (fd limits) is not fatal: the
			// portable driver serves every connection instead.
			if loops, err := newEventLoops(s, n); err == nil {
				s.loops = loops
			}
		}
	})
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		cn := newPconn(s, conn)
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.open[conn] = cn
		s.serving.Add(1)
		s.mu.Unlock()
		s.conns.Add(1)
		s.attach(cn)
	}
}

// attach hands a registered connection to an I/O driver: the next
// event loop round-robin, or a dedicated reader goroutine when there
// are no loops (or the connection is not pollable).
func (s *Server) attach(cn *pconn) {
	if len(s.loops) > 0 {
		if _, ok := cn.c.(*net.TCPConn); ok {
			i := int(s.loopIdx.Add(1)) % len(s.loops)
			if s.loops[i].add(cn) == nil {
				return
			}
		}
	}
	go s.serveConnFallback(cn)
}

// Close shuts the server down gracefully: stop accepting, commit the
// shutdown flag (which wakes every parked BTAKE/WAIT — they answer
// StatusClosed), drain in-flight responses, then tear connections down
// and stop the event loops. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	// Wake parked clients; their handlers write StatusClosed responses.
	if err := s.store.markClosed(s.sysTh); err != nil {
		return err
	}
	// Drain: wait (bounded) for in-flight requests to write responses.
	for deadline := time.Now().Add(5 * time.Second); s.inflight.Load() > 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Anything still queued for a lease answers StatusClosed from here.
	s.exec.Close()
	// Hand connections back to their owning drivers: mark them dead and
	// shut the READ side, which surfaces as EOF in the driver. The owner
	// closes the socket itself, so a shared event loop never races a
	// reused fd number.
	s.mu.Lock()
	for c, cn := range s.open {
		cn.dead.Store(true)
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.wakeLoops()
	// A driver can still be wedged writing to a client that stopped
	// reading; after a grace period close those sockets outright.
	done := make(chan struct{})
	go func() {
		s.serving.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s.mu.Lock()
		for c := range s.open {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.wakeLoops()
	s.loopWG.Wait()
	// Durable shutdown: every connection and lease is drained by now, so
	// no appender races the close. The WAL drains its open batch, fsyncs
	// and closes the active segment — a clean close leaves nothing for
	// the next recovery to truncate.
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
	}
	if s.wlog != nil {
		s.wlog.Close()
	}
	return nil
}

func (s *Server) wakeLoops() {
	for _, l := range s.loops {
		l.wake()
	}
}

// cancelBlocked commits a connection's hang-up flag.
func (s *Server) cancelBlocked(v *tbtm.Var[bool]) {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	_ = s.cancelTh.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return v.Write(tx, true)
	})
}

//
//tbtm:noalloc
func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ParseConsistency maps a command-line name to a consistency criterion.
func ParseConsistency(name string) (tbtm.Consistency, error) {
	switch strings.ToLower(name) {
	case "lsa", "linearizable":
		return tbtm.Linearizable, nil
	case "single", "tl2", "singleversion":
		return tbtm.SingleVersion, nil
	case "causal", "cstm", "causallyserializable":
		return tbtm.CausallySerializable, nil
	case "serializable", "sstm":
		return tbtm.Serializable, nil
	case "zlin", "zstm", "zlinearizable":
		return tbtm.ZLinearizable, nil
	case "si", "sistm", "snapshotisolation":
		return tbtm.SnapshotIsolation, nil
	}
	return 0, fmt.Errorf("server: unknown consistency %q (lsa|single|causal|serializable|zlin|si)", name)
}
