package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
)

// Config configures a Server. The zero value is usable: ZLinearizable,
// auto-sized lease pools, 1024 hash buckets.
type Config struct {
	// Consistency selects the engine's criterion (0 = ZLinearizable).
	// The server works on every backend; the acceptance workloads run at
	// least Linearizable (LSA) and Serializable (S-STM).
	Consistency tbtm.Consistency
	// Leases sizes the fast (non-blocking) lease tranche; 0 means
	// 2*GOMAXPROCS. See the executor's package comment for the contract.
	Leases int
	// BlockingLeases sizes the blocking tranche (BTAKE/WAIT); 0 means
	// 64. Parked leases hold no epoch pin, so this can be generous.
	BlockingLeases int
	// Buckets sizes the value hash map (0 = 1024).
	Buckets int
	// MaxFrame bounds request payloads (0 = DefaultMaxFrame).
	MaxFrame int
	// LongOpens overrides the classifier's long-promotion threshold
	// (0 = the adaptive package default).
	LongOpens float64
	// TMOptions are appended to the server's own engine options;
	// invariant-bearing options (WithBlockingRetry, WithAutoClassify,
	// vector-clock WithThreads sizing) are applied after, so they win.
	TMOptions []tbtm.Option
}

// StatsReply is the JSON document answered to OpStats.
type StatsReply struct {
	Engine   tbtm.Stats      `json:"engine"`
	Metrics  MetricsSnapshot `json:"metrics"`
	Conns    int64           `json:"conns"`
	UptimeMs int64           `json:"uptime_ms"`
}

// Server is a tbtmd instance: one engine, one executor, one store, any
// number of listeners (normally one).
type Server struct {
	cfg   Config
	tm    *tbtm.TM
	exec  *Executor
	store store

	// sysTh runs the server's own transactions (the shutdown commit). It
	// is dedicated: at shutdown every pool lease may be parked.
	sysTh *tbtm.Thread

	// cancelTh commits per-connection cancel flags when disconnect
	// monitors fire; guarded by cancelMu (Thread handles are not
	// concurrency-safe, and monitors are rare).
	cancelMu sync.Mutex
	cancelTh *tbtm.Thread

	start    time.Time
	closed   atomic.Bool
	inflight atomic.Int64 // requests between decode and response write
	conns    atomic.Int64

	mu      sync.Mutex
	ln      net.Listener
	open    map[net.Conn]struct{}
	serving sync.WaitGroup
}

// New builds a Server (and its TM) from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Consistency == 0 {
		cfg.Consistency = tbtm.ZLinearizable
	}
	if cfg.Leases <= 0 {
		cfg.Leases = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.BlockingLeases <= 0 {
		cfg.BlockingLeases = 64
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	opts := []tbtm.Option{tbtm.WithConsistency(cfg.Consistency)}
	opts = append(opts, cfg.TMOptions...)
	// The server's invariants go last so they cannot be overridden:
	// blocking ops park (never spin), update sites classify themselves,
	// and vector time bases are sized for every pooled Thread plus the
	// system thread.
	opts = append(opts,
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(cfg.LongOpens),
	)
	if cfg.Consistency == tbtm.CausallySerializable || cfg.Consistency == tbtm.Serializable {
		opts = append(opts, tbtm.WithThreads(cfg.Leases+cfg.BlockingLeases+2))
	}
	tm, err := tbtm.New(opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		tm:    tm,
		store: newStore(tm, cfg.Buckets),
		start: time.Now(),
		open:  make(map[net.Conn]struct{}),
	}
	s.exec = NewExecutor(tm, cfg.Leases, cfg.BlockingLeases, &Metrics{})
	s.sysTh = tm.NewThread()
	s.cancelTh = tm.NewThread()
	return s, nil
}

// TM returns the server's engine (for embedding servers in tests and
// examples).
func (s *Server) TM() *tbtm.TM { return s.tm }

// Executor returns the server's Thread-executor.
func (s *Server) Executor() *Executor { return s.exec }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.open[conn] = struct{}{}
		s.serving.Add(1)
		s.mu.Unlock()
		s.conns.Add(1)
		go s.handle(conn)
	}
}

// Close shuts the server down gracefully: stop accepting, commit the
// shutdown flag (which wakes every parked BTAKE/WAIT — they answer
// StatusClosed), drain in-flight responses, then close connections and
// the executor. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	// Wake parked clients; their handlers write StatusClosed responses.
	if err := s.store.markClosed(s.sysTh); err != nil {
		return err
	}
	// Drain: wait (bounded) for in-flight requests to write responses.
	for deadline := time.Now().Add(5 * time.Second); s.inflight.Load() > 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.serving.Wait()
	s.exec.Close()
	return nil
}

// conn is the per-connection state: buffered IO plus every buffer the
// request/response cycle needs, allocated once per connection so the
// warm request path allocates nothing.
type conn struct {
	s   *Server
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	hdr [4]byte

	frame []byte  // reusable request frame buffer
	req   request // decoded request (aliases frame)
	resp  []byte  // reusable response build buffer

	results []subResult // reusable multi result buffer
	msubs   []multiSub  // reusable materialised multi script

	// Blocking-op disconnect detection: cancel is the connection's
	// transactional hang-up flag (created on the first blocking op; a
	// parked BTAKE/WAIT reads it on the park path, so committing it
	// wakes the parked transaction), and monDone joins the Peek monitor
	// before the next frame read touches br.
	cancel  *tbtm.Var[bool]
	monDone chan struct{}

	// Hot-path state for the prebound closures below: the two
	// single-key operations a warm client hammers (GET, SET) run
	// through closures built once per connection, so serving them
	// allocates neither a closure nor captured variables per request.
	opKey  string
	opVal  []byte
	getVal []byte
	getOK  bool
	getFn  func(*tbtm.Thread) error
	setFn  func(*tbtm.Thread) error

	// Single-entry key-string cache: a client hammering one key (the
	// warm hot path the alloc tests pin) converts wire bytes to the
	// map's string key once, not per request. keyRaw holds a private
	// copy of the cached key's bytes for the equality check (the frame
	// buffer is reused).
	keyRaw []byte
	keyStr string
}

// handle serves one connection until EOF, error, or server close.
func (s *Server) handle(c net.Conn) {
	defer s.serving.Done()
	defer s.conns.Add(-1)
	cn := &conn{
		s:  s,
		c:  c,
		br: bufio.NewReader(c),
		bw: bufio.NewWriter(c),
	}
	cn.getFn = func(th *tbtm.Thread) error {
		var e error
		cn.getVal, cn.getOK, e = s.store.get(th, cn.opKey)
		return e
	}
	cn.setFn = func(th *tbtm.Thread) error {
		return s.store.set(th, cn.opKey, cn.opVal)
	}
	defer func() {
		s.mu.Lock()
		delete(s.open, c)
		s.mu.Unlock()
		c.Close()
	}()
	for {
		payload, buf, err := readFrame(cn.br, &cn.hdr, cn.frame, s.cfg.MaxFrame)
		cn.frame = buf
		if err != nil {
			return // EOF, conn closed, or a framing error we cannot answer
		}
		s.inflight.Add(1)
		err = cn.serveOne(payload)
		s.inflight.Add(-1)
		if cn.monDone != nil {
			// A blocking op ran: its disconnect monitor is parked in
			// br.Peek. It returns when the client sends the next request
			// (without consuming it) or hangs up; either way it must be
			// out of br before the next readFrame.
			<-cn.monDone
			cn.monDone = nil
		}
		if err != nil {
			return
		}
	}
}

// startMonitor watches the connection for a hang-up while a blocking
// operation is (possibly) parked: the handler goroutine is inside the
// transaction, so a second goroutine peeks the read side. Peek consumes
// nothing — an error means the client hung up, and committing the
// cancel flag wakes the parked transaction so the lease is returned
// and, for BTAKE, the key is NOT consumed for a client that can no
// longer receive it.
//
// Scope: detection covers clients awaiting the blocking response — the
// strict request/response discipline of the reference Client. If Peek
// sees DATA the client has pipelined a request behind the blocking op;
// it was alive a moment ago, the monitor stands down (peeking deeper
// would have to consume), and a crash after that point is noticed when
// the pipelined request's turn comes to read the socket. Until then a
// parked lease can be held for a crashed pipelining client — bounded by
// the blocking tranche and reclaimed by feed-or-shutdown, and the
// tranche is sized generously precisely because parked leases are
// cheap.
func (cn *conn) startMonitor() {
	if cn.cancel == nil {
		cn.cancel = tbtm.NewVar(cn.s.tm, false)
	}
	done := make(chan struct{})
	cn.monDone = done
	go func() {
		defer close(done)
		if _, err := cn.br.Peek(1); err != nil {
			cn.s.cancelBlocked(cn.cancel)
		}
	}()
}

// cancelBlocked commits a connection's hang-up flag.
func (s *Server) cancelBlocked(v *tbtm.Var[bool]) {
	s.cancelMu.Lock()
	defer s.cancelMu.Unlock()
	_ = s.cancelTh.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return v.Write(tx, true)
	})
}

// keyString converts a wire key to the store's string key through the
// connection's single-entry cache.
func (cn *conn) keyString(b []byte) string {
	if bytes.Equal(b, cn.keyRaw) && cn.keyStr != "" {
		return cn.keyStr
	}
	cn.keyRaw = append(cn.keyRaw[:0], b...)
	cn.keyStr = string(b)
	return cn.keyStr
}

// serveOne decodes one request payload, executes it, and writes the
// response frame. A non-nil return tears the connection down.
func (cn *conn) serveOne(payload []byte) error {
	s := cn.s
	out := cn.resp[:0]
	if err := parseRequest(payload, &cn.req); err != nil {
		out = append(out, byte(StatusError))
		out = appendString(out, err.Error())
		return cn.flush(out)
	}
	req := &cn.req
	if s.closed.Load() {
		out = append(out, byte(StatusClosed))
		return cn.flush(out)
	}
	switch req.op {
	case OpPing:
		out = append(out, byte(StatusOK))

	case OpGet:
		cn.opKey = cn.keyString(req.key)
		err := s.exec.Do(nil, OpGet, false, cn.getFn)
		if err == nil && !cn.getOK {
			out = append(out, byte(StatusNotFound))
		} else {
			out = cn.status(out, err, nil)
			if err == nil {
				out = appendBytes(out, cn.getVal)
			}
		}
		cn.getVal = nil

	case OpSet:
		cn.opKey = cn.keyString(req.key)
		cn.opVal = copyBytes(req.val)
		err := s.exec.Do(nil, OpSet, false, cn.setFn)
		cn.opVal = nil
		out = cn.status(out, err, nil)

	case OpDel:
		var deleted bool
		err := s.exec.Do(nil, OpDel, false, func(th *tbtm.Thread) error {
			var e error
			deleted, e = s.store.del(th, cn.keyString(req.key))
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			return append(out, boolByte(deleted))
		})

	case OpCas:
		var swapped bool
		err := s.exec.Do(nil, OpCas, false, func(th *tbtm.Thread) error {
			var e error
			swapped, e = s.store.cas(th, cn.keyString(req.key), req.expectPresent, req.expect, copyBytes(req.val))
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			return append(out, boolByte(swapped))
		})

	case OpRange:
		var pairs []kv
		err := s.exec.Do(nil, OpRange, false, func(th *tbtm.Thread) error {
			var e error
			pairs, e = s.store.rangeScan(th, string(req.from), string(req.to), req.limit)
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			out = binary.AppendUvarint(out, uint64(len(pairs)))
			for _, p := range pairs {
				out = appendString(out, p.key)
				out = appendBytes(out, p.val)
			}
			return out
		})

	case OpMulti:
		cn.msubs = materialize(req.multi, cn.msubs)
		var committed bool
		err := s.exec.Do(nil, OpMulti, false, func(th *tbtm.Thread) error {
			var e error
			committed, e = s.store.multi(th, cn.msubs, &cn.results)
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			out = append(out, boolByte(committed))
			out = binary.AppendUvarint(out, uint64(len(cn.results)))
			for i := range cn.results {
				r := &cn.results[i]
				out = append(out, byte(r.status))
				switch req.multi[i].op {
				case OpGet:
					if r.status == StatusOK {
						out = appendBytes(out, r.val)
					}
				case OpSet:
				case OpDel, OpCas:
					out = append(out, boolByte(r.present))
				}
			}
			return out
		})

	case OpBTake:
		cn.startMonitor()
		var val []byte
		err := s.exec.Do(nil, OpBTake, true, func(th *tbtm.Thread) error {
			var e error
			val, e = s.store.btake(th, cn.keyString(req.key), cn.cancel)
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			return appendBytes(out, val)
		})

	case OpWait:
		cn.startMonitor()
		var val []byte
		var present bool
		err := s.exec.Do(nil, OpWait, true, func(th *tbtm.Thread) error {
			var e error
			val, present, e = s.store.wait(th, cn.keyString(req.key), req.expectPresent, req.expect, cn.cancel)
			return e
		})
		out = cn.status(out, err, func(out []byte) []byte {
			out = append(out, boolByte(present))
			if present {
				out = appendBytes(out, val)
			}
			return out
		})

	case OpStats:
		reply := StatsReply{
			Engine:   s.tm.Stats(),
			Metrics:  s.exec.m.snapshot(s.exec.nFast, s.exec.nBlock),
			Conns:    s.conns.Load(),
			UptimeMs: time.Since(s.start).Milliseconds(),
		}
		doc, err := json.Marshal(reply)
		out = cn.status(out, err, func(out []byte) []byte {
			return appendBytes(out, doc)
		})

	default:
		out = append(out, byte(StatusError))
		out = appendString(out, fmt.Sprintf("server: unknown opcode %d", req.op))
	}
	return cn.flush(out)
}

// status appends the response head for err, then — on success — lets ok
// append the payload. ErrServerClosed maps to StatusClosed, every other
// error to StatusError with its message.
func (cn *conn) status(out []byte, err error, ok func([]byte) []byte) []byte {
	switch {
	case err == nil:
		out = append(out, byte(StatusOK))
		if ok != nil {
			out = ok(out)
		}
	case errors.Is(err, ErrServerClosed) || errors.Is(err, ErrExecutorClosed), errors.Is(err, errClientGone):
		out = append(out, byte(StatusClosed)) // for errClientGone nobody is reading; the frame keeps the stream well-formed
	default:
		out = append(out, byte(StatusError))
		out = appendString(out, err.Error())
	}
	return out
}

// flush writes the response frame and retains the (possibly grown)
// buffer for reuse. Responses obey the same frame bound as requests: an
// oversized reply (an unbounded RANGE over a big store) is replaced by
// a StatusError frame rather than desynchronising a client whose
// readFrame would reject the length prefix without consuming the body.
func (cn *conn) flush(out []byte) error {
	if len(out) > cn.s.cfg.MaxFrame {
		out = append(out[:0], byte(StatusError))
		out = appendString(out, fmt.Sprintf(
			"server: reply exceeds the %d-byte frame limit; narrow the range or pass a limit and resume from the last key", cn.s.cfg.MaxFrame))
	}
	cn.resp = out[:0]
	if err := writeFrame(cn.bw, &cn.hdr, out); err != nil {
		return err
	}
	return cn.bw.Flush()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ParseConsistency maps a command-line name to a consistency criterion.
func ParseConsistency(name string) (tbtm.Consistency, error) {
	switch strings.ToLower(name) {
	case "lsa", "linearizable":
		return tbtm.Linearizable, nil
	case "single", "tl2", "singleversion":
		return tbtm.SingleVersion, nil
	case "causal", "cstm", "causallyserializable":
		return tbtm.CausallySerializable, nil
	case "serializable", "sstm":
		return tbtm.Serializable, nil
	case "zlin", "zstm", "zlinearizable":
		return tbtm.ZLinearizable, nil
	case "si", "sistm", "snapshotisolation":
		return tbtm.SnapshotIsolation, nil
	}
	return 0, fmt.Errorf("server: unknown consistency %q (lsa|single|causal|serializable|zlin|si)", name)
}
