//go:build linux

package transport

import (
	"net"
	"sync"
	"sync/atomic"
)

// LoopSet is a fixed set of shared epoll event loops; connections are
// attached round-robin and owned by their loop until teardown.
type LoopSet struct {
	host  Host
	loops []*evloop
	idx   atomic.Uint32
	wg    sync.WaitGroup
}

// Attach hands a connection to the next loop round-robin. It reports
// false when the connection cannot be loop-driven (not a TCP socket,
// or registration failed); the caller runs ServeFallback instead.
func (ls *LoopSet) Attach(cn *Conn) bool {
	if ls == nil || len(ls.loops) == 0 {
		return false
	}
	if _, ok := cn.c.(*net.TCPConn); !ok {
		return false
	}
	i := int(ls.idx.Add(1)) % len(ls.loops)
	return ls.loops[i].add(cn) == nil
}

// Wake nudges every loop out of epoll_wait (after marking connections
// dead, and again when shutdown wants the loops to exit).
func (ls *LoopSet) Wake() {
	if ls == nil {
		return
	}
	for _, l := range ls.loops {
		l.wake()
	}
}

// Wait blocks until every loop has exited (host closed and all owned
// connections torn down).
func (ls *LoopSet) Wait() {
	if ls == nil {
		return
	}
	ls.wg.Wait()
}
