// Package transport is the server's connection I/O layer: pipelined
// greedy decode, server-side batching, a coalescing response writer,
// and the platform connection drivers (shared epoll event loops on
// Linux, goroutine-per-connection elsewhere). It drives any engine.KV
// through an engine.Executor and calls back into its Host — the
// server's composition root — for everything above the connection:
// lifecycle registration, stats documents, and replication streams.
//
// PR5 served one request at a time per connection: read one frame,
// lease a Thread, run one transaction, write one response, flush — four
// syscalls and one lease cycle per wire op, which is why BENCH_PR5
// measured a 35x gap between wire throughput and in-process commits.
// The Conn closes that gap structurally:
//
//   - requests are decoded GREEDILY from each readable burst: every
//     complete frame in the buffer is parsed before any response is
//     flushed, so k pipelined requests cost one read;
//
//   - consecutive non-blocking single-key ops (GET/SET/DEL/CAS) are
//     accumulated and executed under ONE fast-tranche lease as ONE
//     transaction (KV.ExecBatch) — reads see the batch's earlier
//     writes, each op gets its own status, a failed CAS is a per-op
//     result rather than an abort, and a batch that fails with a
//     genuine error re-runs its ops individually so the first error
//     does not poison later independent ops;
//
//   - responses are appended to a coalescing write buffer and flushed
//     once per burst, so k responses cost one write.
//
// Non-blocking responses are written in request order. Blocking ops
// (BTAKE/WAIT) leave the fast path entirely: they are dispatched to a
// dedicated goroutine holding a blocking-tranche lease, later requests
// on the connection keep flowing, and the blocking response is written
// whenever the op completes — matched by its echoed sequence ID, the
// one place the protocol is out of order by design. OpReplicate
// likewise moves to its own goroutine, which streams frames through the
// same frame-granular write buffer for as long as the connection lives.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/telemetry"
	"tbtm/server/engine"
	"tbtm/server/wire"
)

// Config bounds one connection's resource use.
type Config struct {
	// MaxFrame bounds request and response payloads.
	MaxFrame int
	// MaxBatch caps how many consecutive non-blocking single-key ops
	// from one pipelined burst share a lease and commit window.
	MaxBatch int
	// Recorder is the host's flight recorder (nil disables tracing).
	// Event loops record into one permanent ring per loop; fallback
	// connections borrow pooled rings.
	Recorder *telemetry.Recorder
}

// Host is what the transport needs from the server around it. The
// composition root implements it; the transport never imports the
// server package.
type Host interface {
	// Closed reports server shutdown; new requests answer StatusClosed.
	Closed() bool
	// InflightAdd tracks requests between decode and response write (the
	// graceful-shutdown drain counts them).
	InflightAdd(delta int64)
	// NewCancelVar allocates a connection's transactional hang-up flag.
	NewCancelVar() *tbtm.Var[bool]
	// CancelBlocked commits a hang-up flag, waking the connection's
	// parked blocking ops.
	CancelBlocked(v *tbtm.Var[bool])
	// StatsJSON renders the OpStats reply document.
	StatsJSON() ([]byte, error)
	// ConnDone deregisters a torn-down connection (the counterpart of
	// whatever registration the host did before attaching it).
	ConnDone(cn *Conn)
	// Replicate serves one OpReplicate stream until the stream stops or
	// fails; the returned error (mapped through the usual status rules)
	// becomes the stream's terminal frame. Hosts without a WAL return a
	// plain error.
	Replicate(st *Stream, afterSeq uint64) error
	// TraceJSON dumps the host's flight recorder (at most max events, 0
	// for the host default) as one JSON document — the OpTrace reply.
	TraceJSON(max int) ([]byte, error)
}

// keyCacheSlots sizes the per-connection direct-mapped key-string
// cache (a power of two). PR5's single entry was enough for one-op-at-
// a-time clients; a pipelined burst touches several keys, so the cache
// holds a small working set and converts wire bytes to the store's
// string key once per key, not once per request.
const keyCacheSlots = 8

type keyCacheEntry struct {
	raw []byte // private copy of the key bytes (the frame buffer is reused)
	str string
}

// keySlot hashes key bytes to a cache slot (FNV-1a, truncated).
//
//tbtm:noalloc
func keySlot(b []byte) int {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return int(h & (keyCacheSlots - 1))
}

// Conn is the per-connection state: the read accumulation buffer the
// decoder aliases into, the pending batch, the coalescing write buffer,
// and every scratch buffer the request cycle needs — allocated once per
// connection so the warm pipelined path allocates nothing.
type Conn struct {
	host Host
	cfg  Config
	exec *engine.Executor
	kv   engine.KV
	c    net.Conn
	w    io.Writer // response sink; cn.c except in decode-level tests

	fd   int         // epoll-path file descriptor (-1 on the fallback driver)
	dead atomic.Bool // set by Close so the owning loop tears down without touching the socket

	in    []byte       // read accumulation buffer; frames are decoded in place
	inoff int          // consumed prefix of in
	req   wire.Request // decoded request (aliases in)
	resp  []byte       // response body scratch (reader-owned)

	// Coalescing response writer. Frames are appended under wmu —
	// whole frames only, so blocking completions and replication stream
	// chunks interleave at frame granularity — and written with one
	// Write per flush.
	wmu  sync.Mutex
	wbuf []byte

	// Pending batch: decoded non-blocking single-key ops awaiting one
	// shared lease/commit window, with their sequence IDs.
	batch     []engine.MultiSub
	batchSeqs []uint64
	results   []engine.SubResult
	msubs     []engine.MultiSub // solo MULTI scratch

	keys [keyCacheSlots]keyCacheEntry

	// Blocking-op state: cancel is the connection's transactional
	// hang-up flag (committing it wakes every parked BTAKE/WAIT of this
	// connection), blockingOut counts dispatched-but-unanswered
	// blocking ops.
	cancel      *tbtm.Var[bool]
	blockingOut atomic.Int64

	// replStop ends this connection's replication streams at teardown.
	replStop chan struct{}

	// Prebound closures for the lease-holding paths, built once per
	// connection so serving allocates neither a closure nor captured
	// variables per request. oneIdx selects the batch entry oneFn runs.
	oneIdx    int
	oneRes    engine.SubResult
	oneFn     func(*tbtm.Thread) error
	batchFn   func(*tbtm.Thread) error
	batchROFn func(*tbtm.Thread) error

	// Flight-recorder state. ring is the event sink (the owning event
	// loop's permanent ring, or a pooled ring on the fallback driver);
	// id tags this connection's events. evOp/evSeq/evT0 carry the
	// in-flight op's envelope — set before the executor call so the
	// prebound closures (which cannot take parameters) can see them.
	ring  *telemetry.Ring
	id    uint32
	evOp  uint8
	evSeq uint64
	evT0  int64

	down sync.Once
}

// connIDSeq issues recorder-scoped connection IDs (trace correlation
// only; not the host's connection registry).
var connIDSeq atomic.Uint32

// NewConn builds the per-connection state over c. The host must have
// registered the connection already (ConnDone undoes that exactly
// once).
func NewConn(host Host, cfg Config, exec *engine.Executor, kv engine.KV, c net.Conn) *Conn {
	cn := &Conn{host: host, cfg: cfg, exec: exec, kv: kv, c: c, w: c, fd: -1,
		replStop: make(chan struct{}), id: connIDSeq.Add(1)}
	// The closures run under the lease: everything before them was
	// lease-wait, everything inside them is engine execution. Begins()
	// deltas count transactions started, so Aux-1 on the EvExec event is
	// the op's conflict-retry count. Every trace call is nil-safe and a
	// few atomic loads when the recorder is disarmed.
	cn.oneFn = func(th *tbtm.Thread) error {
		t := cn.ring.Span(telemetry.EvLeaseWait, cn.evOp, cn.id, cn.evSeq, 0, cn.evT0)
		th.AttachTrace(cn.ring, cn.id, cn.evSeq)
		b0 := th.Begins()
		res, err := kv.ExecOne(th, &cn.batch[cn.oneIdx])
		cn.ring.Span(telemetry.EvExec, cn.evOp, cn.id, cn.evSeq, uint32(th.Begins()-b0), t)
		if err != nil {
			return err
		}
		cn.oneRes = res
		return nil
	}
	cn.batchFn = func(th *tbtm.Thread) error {
		t := cn.ring.Span(telemetry.EvLeaseWait, cn.evOp, cn.id, cn.evSeq, 0, cn.evT0)
		th.AttachTrace(cn.ring, cn.id, cn.evSeq)
		b0 := th.Begins()
		err := kv.ExecBatch(th, cn.batch, &cn.results)
		cn.ring.Span(telemetry.EvExec, cn.evOp, cn.id, cn.evSeq, uint32(th.Begins()-b0), t)
		return err
	}
	cn.batchROFn = func(th *tbtm.Thread) error {
		t := cn.ring.Span(telemetry.EvLeaseWait, cn.evOp, cn.id, cn.evSeq, 0, cn.evT0)
		th.AttachTrace(cn.ring, cn.id, cn.evSeq)
		b0 := th.Begins()
		err := kv.ExecBatchRO(th, cn.batch, &cn.results)
		cn.ring.Span(telemetry.EvExec, cn.evOp, cn.id, cn.evSeq, uint32(th.Begins()-b0), t)
		return err
	}
	return cn
}

// NetConn returns the underlying connection (the host keys its open-
// connection registry by it and shuts its read side at Close).
func (cn *Conn) NetConn() net.Conn { return cn.c }

// MarkDead flags the connection for teardown by its owning driver
// without touching the socket (the owner closes it; see the event-loop
// ownership rule).
func (cn *Conn) MarkDead() { cn.dead.Store(true) }

// keyString converts a wire key to the store's string key through the
// connection's direct-mapped cache.
//
//tbtm:allocok
func (cn *Conn) keyString(b []byte) string {
	e := &cn.keys[keySlot(b)]
	if e.str != "" && bytes.Equal(b, e.raw) {
		return e.str
	}
	e.raw = append(e.raw[:0], b...)
	e.str = string(b)
	return e.str
}

// grow ensures at least n spare bytes in the read buffer.
//
//tbtm:allocok
func (cn *Conn) grow(n int) {
	if cap(cn.in)-len(cn.in) >= n {
		return
	}
	// Compact first: consumed prefix is dead weight.
	cn.compact()
	if cap(cn.in)-len(cn.in) >= n {
		return
	}
	newCap := 2 * cap(cn.in)
	if newCap < 4096 {
		newCap = 4096
	}
	for newCap-len(cn.in) < n {
		newCap *= 2
	}
	in := make([]byte, len(cn.in), newCap)
	copy(in, cn.in)
	cn.in = in
}

// compact drops the consumed prefix, moving any partial frame to the
// front of the buffer.
//
//tbtm:noalloc
func (cn *Conn) compact() {
	if cn.inoff == 0 {
		return
	}
	n := copy(cn.in, cn.in[cn.inoff:])
	cn.in = cn.in[:n]
	cn.inoff = 0
}

// processBurst decodes every complete frame buffered in cn.in,
// executes batches and solo ops, queues their responses, and flushes
// the wire once. A non-nil return tears the connection down. Decoded
// requests alias cn.in, which is stable until compact() at the end —
// batch execution therefore always happens inside the burst.
func (cn *Conn) processBurst() error {
	t0 := cn.ring.Now()
	frames := uint32(0)
	firstSeq := uint64(0)
	for {
		rest := cn.in[cn.inoff:]
		if len(rest) < 4 {
			break
		}
		n := int(binary.BigEndian.Uint32(rest))
		if n > cn.cfg.MaxFrame {
			return wire.ErrFrameTooLarge
		}
		if len(rest) < 4+n {
			// Partial frame: make room for the remainder, wait for more.
			cn.grow(4 + n - len(rest))
			break
		}
		payload := rest[4 : 4+n]
		cn.inoff += 4 + n

		seq, body, err := wire.TakeUvarint(payload)
		if err != nil {
			return err // cannot even attribute a response; desynced
		}
		if frames == 0 {
			firstSeq = seq
		}
		frames++
		if err := cn.dispatch(seq, body); err != nil {
			return err
		}
	}
	// The decode span covers the burst's frame-scan loop. Batchable ops
	// only accumulate there, so for pipelined GET/SET bursts this is
	// pure decode cost; bursts carrying solo or blocking ops fold their
	// inline dispatch in too.
	if frames > 0 {
		cn.ring.Span(telemetry.EvDecode, 0, cn.id, firstSeq, frames, t0)
	}
	if err := cn.flushBatch(); err != nil {
		return err
	}
	cn.compact()
	ft := cn.ring.Now()
	err := cn.flushWire()
	if frames > 0 {
		cn.ring.Span(telemetry.EvFlush, 0, cn.id, firstSeq, 0, ft)
	}
	return err
}

// dispatch routes one decoded request. Batchable ops accumulate; every
// other class first flushes the pending batch so non-blocking
// responses stay in request order.
func (cn *Conn) dispatch(seq uint64, body []byte) error {
	if err := wire.ParseRequest(body, &cn.req); err != nil {
		if ferr := cn.flushBatch(); ferr != nil {
			return ferr
		}
		b := cn.beginResp(seq)
		b = append(b, byte(wire.StatusError))
		b = wire.AppendString(b, err.Error())
		cn.queueResp(b)
		return nil
	}
	if cn.host.Closed() {
		if ferr := cn.flushBatch(); ferr != nil {
			return ferr
		}
		cn.queueResp(append(cn.beginResp(seq), byte(wire.StatusClosed)))
		return nil
	}
	switch cn.req.Op {
	case wire.OpGet, wire.OpSet, wire.OpDel, wire.OpCas:
		cn.appendBatch(seq, &cn.req.SubReq)
		if len(cn.batch) >= cn.cfg.MaxBatch {
			return cn.flushBatch()
		}
		return nil
	case wire.OpPing:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		cn.queueResp(append(cn.beginResp(seq), byte(wire.StatusOK)))
		return nil
	case wire.OpBTake, wire.OpWait:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		cn.dispatchBlocking(seq)
		return nil
	case wire.OpReplicate:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		cn.dispatchReplicate(seq)
		return nil
	case wire.OpRange, wire.OpMulti, wire.OpStats, wire.OpTrace:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		return cn.execSolo(seq)
	default:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		b := cn.beginResp(seq)
		b = append(b, byte(wire.StatusError))
		b = wire.AppendString(b, fmt.Sprintf("server: unknown opcode %d", cn.req.Op))
		cn.queueResp(b)
		return nil
	}
}

// appendBatch materializes one single-key op into the pending batch:
// string key through the cache, a private copy of the stored value
// (it outlives the frame buffer), expect aliasing the frame buffer
// (only compared inside the attempt, and the batch executes before the
// buffer is compacted).
func (cn *Conn) appendBatch(seq uint64, sub *wire.SubReq) {
	m := engine.MultiSub{
		Op:            sub.Op,
		Key:           cn.keyString(sub.Key),
		Expect:        sub.Expect,
		ExpectPresent: sub.ExpectPresent,
	}
	if sub.Op == wire.OpSet || sub.Op == wire.OpCas {
		m.Val = engine.CopyBytes(sub.Val)
	}
	cn.batch = append(cn.batch, m)
	cn.batchSeqs = append(cn.batchSeqs, seq)
}

// flushBatch executes the pending batch — one lease and one commit
// window for k >= 2 ops, the plain single-op path for k == 1 — and
// queues the per-op responses in request order.
func (cn *Conn) flushBatch() error {
	n := len(cn.batch)
	if n == 0 {
		return nil
	}
	cn.host.InflightAdd(1)
	defer cn.host.InflightAdd(-1)

	cn.evOp = uint8(cn.batch[0].Op)
	cn.evSeq = cn.batchSeqs[0]
	cn.evT0 = cn.ring.Now()

	var err error
	if n == 1 {
		cn.oneIdx = 0
		err = cn.exec.Do(nil, cn.batch[0].Op, false, cn.oneFn)
		if err == nil {
			cn.results = append(cn.results[:0], cn.oneRes)
		}
	} else {
		ro := true
		for i := range cn.batch {
			if cn.batch[i].Op != wire.OpGet {
				ro = false
				break
			}
		}
		fn := cn.batchFn
		if ro {
			fn = cn.batchROFn
		}
		var d time.Duration
		d, err = cn.exec.DoBatch(nil, n, fn)
		if err == nil {
			// Attribute amortized latency to the constituent opcodes so
			// per-op counters keep reflecting wire traffic.
			per := d / time.Duration(n)
			m := cn.exec.Metrics()
			for i := range cn.batch {
				m.RecordOp(cn.batch[i].Op, per, nil)
			}
		}
	}

	if err != nil {
		cn.rerunSolo(err)
	} else {
		for i := range cn.batch {
			b := cn.beginResp(cn.batchSeqs[i])
			b = appendSubResp(b, cn.batch[i].Op, &cn.results[i])
			cn.queueResp(b)
		}
	}
	// The envelope event for the whole batch (Aux = op count) — also
	// the slow-op checkpoint.
	cn.ring.Op(cn.evOp, cn.id, cn.evSeq, uint32(n), cn.evT0)
	cn.batch = cn.batch[:0]
	cn.batchSeqs = cn.batchSeqs[:0]
	return nil
}

// rerunSolo is the batch-abort policy: the shared window failed with a
// genuine error (engine error, executor shutdown), so each op re-runs
// in its own transaction and answers its own outcome — the first error
// does not poison later independent ops. Shutdown errors short-circuit:
// every op answers StatusClosed without touching the engine again.
func (cn *Conn) rerunSolo(batchErr error) {
	closed := errors.Is(batchErr, engine.ErrServerClosed) || errors.Is(batchErr, engine.ErrExecutorClosed)
	for i := range cn.batch {
		b := cn.beginResp(cn.batchSeqs[i])
		if closed {
			b = append(b, byte(wire.StatusClosed))
			cn.queueResp(b)
			continue
		}
		cn.oneIdx = i
		err := cn.exec.Do(nil, cn.batch[i].Op, false, cn.oneFn)
		if err != nil {
			b = appendErrStatus(b, err)
		} else {
			b = appendSubResp(b, cn.batch[i].Op, &cn.oneRes)
		}
		cn.queueResp(b)
	}
}

// appendSubResp encodes one batch entry's wire response body (after the
// sequence ID): the same formats as the top-level single-key ops.
//
//tbtm:noalloc
func appendSubResp(b []byte, op wire.Op, r *engine.SubResult) []byte {
	switch op {
	case wire.OpGet:
		if r.Status == wire.StatusNotFound {
			return append(b, byte(wire.StatusNotFound))
		}
		b = append(b, byte(wire.StatusOK))
		return wire.AppendBytes(b, r.Val)
	case wire.OpSet:
		return append(b, byte(wire.StatusOK))
	case wire.OpDel, wire.OpCas:
		b = append(b, byte(wire.StatusOK))
		return append(b, wire.BoolByte(r.Present))
	}
	return append(b, byte(wire.StatusError)) // unreachable: batch ops are the four above
}

// appendErrStatus encodes a failed op's response head: shutdown maps to
// StatusClosed, read-only refusals to StatusReadOnly plus a reason byte
// (WAL degradation vs replica), everything else to StatusError with the
// message.
func appendErrStatus(b []byte, err error) []byte {
	if errors.Is(err, engine.ErrServerClosed) || errors.Is(err, engine.ErrExecutorClosed) || errors.Is(err, engine.ErrClientGone) {
		return append(b, byte(wire.StatusClosed))
	}
	if errors.Is(err, engine.ErrReadOnly) {
		return append(b, byte(wire.StatusReadOnly), wire.ReadOnlyWAL)
	}
	if errors.Is(err, engine.ErrReplicaRead) {
		return append(b, byte(wire.StatusReadOnly), wire.ReadOnlyReplica)
	}
	b = append(b, byte(wire.StatusError))
	return wire.AppendString(b, err.Error())
}

// execSolo runs the non-batchable non-blocking ops (RANGE, MULTI,
// STATS), with the response queued instead of written directly.
func (cn *Conn) execSolo(seq uint64) error {
	cn.host.InflightAdd(1)
	defer cn.host.InflightAdd(-1)
	req := &cn.req
	cn.evOp = uint8(req.Op)
	cn.evSeq = seq
	cn.evT0 = cn.ring.Now()
	b := cn.beginResp(seq)
	switch req.Op {
	case wire.OpRange:
		var pairs []engine.Pair
		err := cn.exec.Do(nil, wire.OpRange, false, func(th *tbtm.Thread) error {
			th.AttachTrace(cn.ring, cn.id, seq)
			var e error
			pairs, e = cn.kv.RangeScan(th, string(req.From), string(req.To), req.Limit)
			return e
		})
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(wire.StatusOK))
		b = binary.AppendUvarint(b, uint64(len(pairs)))
		for _, p := range pairs {
			b = wire.AppendString(b, p.Key)
			b = wire.AppendBytes(b, p.Val)
		}

	case wire.OpMulti:
		cn.msubs = cn.materialize(req.Multi, cn.msubs)
		var committed bool
		err := cn.exec.Do(nil, wire.OpMulti, false, func(th *tbtm.Thread) error {
			th.AttachTrace(cn.ring, cn.id, seq)
			var e error
			committed, e = cn.kv.Multi(th, cn.msubs, &cn.results)
			return e
		})
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(wire.StatusOK), wire.BoolByte(committed))
		b = binary.AppendUvarint(b, uint64(len(cn.results)))
		for i := range cn.results {
			r := &cn.results[i]
			b = append(b, byte(r.Status))
			switch req.Multi[i].Op {
			case wire.OpGet:
				if r.Status == wire.StatusOK {
					b = wire.AppendBytes(b, r.Val)
				}
			case wire.OpSet:
			case wire.OpDel, wire.OpCas:
				b = append(b, wire.BoolByte(r.Present))
			}
		}

	case wire.OpStats:
		doc, err := cn.host.StatsJSON()
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(wire.StatusOK))
		b = wire.AppendBytes(b, doc)

	case wire.OpTrace:
		max := int(req.TraceMax)
		if req.TraceMax > 1<<30 {
			max = 1 << 30
		}
		doc, err := cn.host.TraceJSON(max)
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(wire.StatusOK))
		b = wire.AppendBytes(b, doc)
	}
	cn.queueResp(b)
	cn.ring.Op(cn.evOp, cn.id, seq, 1, cn.evT0)
	return nil
}

// materialize converts parsed MULTI sub-requests into retry-stable
// script entries, keys through the connection's cache, reusing dst.
func (cn *Conn) materialize(subs []wire.SubReq, dst []engine.MultiSub) []engine.MultiSub {
	dst = dst[:0]
	for i := range subs {
		sub := &subs[i]
		m := engine.MultiSub{Op: sub.Op, Key: cn.keyString(sub.Key), Expect: sub.Expect, ExpectPresent: sub.ExpectPresent}
		if sub.Op == wire.OpSet || sub.Op == wire.OpCas {
			m.Val = engine.CopyBytes(sub.Val)
		}
		dst = append(dst, m)
	}
	return dst
}

// dispatchBlocking hands a BTAKE/WAIT to a dedicated goroutine holding
// a blocking-tranche lease. Later requests on this connection keep
// flowing; the response is written out of order when the op completes,
// matched by its sequence ID. The goroutine owns private copies of
// every request field it touches (the frame buffer does not survive
// the burst).
func (cn *Conn) dispatchBlocking(seq uint64) {
	if cn.cancel == nil {
		cn.cancel = cn.host.NewCancelVar()
	}
	op := cn.req.Op
	key := cn.keyString(cn.req.Key)
	expectPresent := cn.req.ExpectPresent
	var old []byte
	if op == wire.OpWait {
		old = engine.CopyBytes(cn.req.Expect)
	}
	cancel := cn.cancel
	cn.blockingOut.Add(1)
	cn.host.InflightAdd(1)
	go func() {
		defer cn.blockingOut.Add(-1)
		defer cn.host.InflightAdd(-1)
		// The ring's mutex makes recording from this goroutine safe.
		// The envelope is recorded as a plain span, NOT through Op():
		// a BTAKE parked for minutes is normal, not a slow op.
		t0 := cn.ring.Now()
		b := binary.AppendUvarint(make([]byte, 0, 64), seq)
		if op == wire.OpBTake {
			var val []byte
			err := cn.exec.Do(nil, wire.OpBTake, true, func(th *tbtm.Thread) error {
				th.AttachTrace(cn.ring, cn.id, seq)
				var e error
				val, e = cn.kv.BTake(th, key, cancel)
				return e
			})
			if err != nil {
				b = appendErrStatus(b, err)
			} else {
				b = append(b, byte(wire.StatusOK))
				b = wire.AppendBytes(b, val)
			}
		} else {
			var val []byte
			var present bool
			err := cn.exec.Do(nil, wire.OpWait, true, func(th *tbtm.Thread) error {
				th.AttachTrace(cn.ring, cn.id, seq)
				var e error
				val, present, e = cn.kv.Wait(th, key, expectPresent, old, cancel)
				return e
			})
			if err != nil {
				b = appendErrStatus(b, err)
			} else {
				b = append(b, byte(wire.StatusOK), wire.BoolByte(present))
				if present {
					b = wire.AppendBytes(b, val)
				}
			}
		}
		cn.ring.Span(telemetry.EvOp, uint8(op), cn.id, seq, 1, t0)
		cn.queueResp(b)
		_ = cn.flushWire() // nobody else will flush for us; errors mean the client is gone
	}()
}

// Stream is one OpReplicate response stream: a frame writer bound to
// the subscribing request's sequence ID, safe to use from the
// replication goroutine while the connection keeps serving other
// requests (frames interleave at frame granularity through the
// coalescing writer).
type Stream struct {
	cn  *Conn
	seq uint64
	buf []byte
}

// Begin starts a stream frame body: the subscription's sequence ID in
// the stream's own scratch buffer. The caller appends the status, kind
// byte and payload, then hands the body to Flush.
func (st *Stream) Begin() []byte {
	return binary.AppendUvarint(st.buf[:0], st.seq)
}

// Flush frames the body and writes it out immediately (a stream frame
// must not sit in the coalescing buffer waiting for reader activity).
// The body must come from Begin.
func (st *Stream) Flush(body []byte) error {
	if len(body) > st.cn.cfg.MaxFrame {
		return wire.ErrFrameTooLarge
	}
	st.buf = body[:0] // retain the grown scratch
	st.cn.queueFrame(body)
	return st.cn.flushWire()
}

// Stop is closed when the connection tears down; the replication
// serving loop selects on it.
func (st *Stream) Stop() <-chan struct{} { return st.cn.replStop }

// dispatchReplicate hands an OpReplicate subscription to a dedicated
// goroutine: the host pumps checkpoint and record frames through the
// Stream until the connection dies or the host's WAL closes. The stream
// is NOT counted in-flight — it never completes on its own, and the
// graceful-shutdown drain must not wait for it.
func (cn *Conn) dispatchReplicate(seq uint64) {
	after := cn.req.After
	go func() {
		st := &Stream{cn: cn, seq: seq}
		err := cn.host.Replicate(st, after)
		if err == nil {
			err = engine.ErrServerClosed
		}
		b := binary.AppendUvarint(make([]byte, 0, 64), seq)
		b = appendErrStatus(b, err)
		cn.queueResp(b)
		_ = cn.flushWire() // errors mean the follower is gone
	}()
}

// beginResp starts a response body in the reader-owned scratch buffer.
//
//tbtm:noalloc
func (cn *Conn) beginResp(seq uint64) []byte {
	return binary.AppendUvarint(cn.resp[:0], seq)
}

// queueFrame frames body into the coalescing write buffer.
//
//tbtm:noalloc
func (cn *Conn) queueFrame(body []byte) {
	cn.wmu.Lock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	cn.wbuf = append(cn.wbuf, hdr[:]...)
	cn.wbuf = append(cn.wbuf, body...)
	cn.wmu.Unlock()
}

// queueResp frames body into the coalescing write buffer. An oversized
// body (an unbounded RANGE over a big store) is replaced by a
// StatusError frame rather than desynchronising a client whose
// readFrame would reject the length prefix without consuming the body.
//
//tbtm:noalloc
func (cn *Conn) queueResp(body []byte) {
	if len(body) > cn.cfg.MaxFrame {
		body = cn.oversizedResp(body)
	}
	cn.queueFrame(body)
	// Retain a grown reader scratch buffer for reuse; blocking
	// completions pass private buffers, which this keeps too — the
	// reader's next beginResp call resets it either way.
	if cap(body) > cap(cn.resp) {
		cn.resp = body[:0]
	}
}

// oversizedResp rewrites an over-limit body into a StatusError frame.
// Cold by construction: it only runs when a reply already blew the
// frame limit, so the formatting allocation is irrelevant.
//
//tbtm:allocok
func (cn *Conn) oversizedResp(body []byte) []byte {
	seq, _, _ := wire.TakeUvarint(body)
	body = binary.AppendUvarint(body[:0], seq)
	body = append(body, byte(wire.StatusError))
	return wire.AppendString(body, fmt.Sprintf(
		"server: reply exceeds the %d-byte frame limit; narrow the range or pass a limit and resume from the last key", cn.cfg.MaxFrame))
}

// flushWire writes the buffered response frames with one Write.
//
//tbtm:noalloc
func (cn *Conn) flushWire() error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if len(cn.wbuf) == 0 {
		return nil
	}
	_, err := cn.w.Write(cn.wbuf)
	cn.wbuf = cn.wbuf[:0]
	return err
}

// teardown closes the connection exactly once: end its replication
// streams, wake anything this connection parked (the client cannot
// receive the value anyway — for BTAKE the key must NOT be consumed),
// close the socket, and deregister from the host. Called only by the
// connection's owning driver (its event loop or its reader goroutine).
func (cn *Conn) teardown() {
	cn.down.Do(func() {
		close(cn.replStop)
		if cn.cancel != nil && cn.blockingOut.Load() > 0 {
			cn.host.CancelBlocked(cn.cancel)
		}
		cn.c.Close()
		cn.host.ConnDone(cn)
	})
}

// ServeFallback is the portable connection driver: one goroutine per
// connection blocked in Read — the Go runtime's netpoller is the event
// loop — with the same greedy decode, batching, and coalesced flush as
// the shared epoll loops. Used when the platform has no epoll (or the
// host disabled loops), and for non-TCP listeners. It blocks until the
// connection dies; run it on its own goroutine.
func ServeFallback(cn *Conn) {
	if rec := cn.cfg.Recorder; rec != nil && cn.ring == nil {
		cn.ring = rec.AcquireRing()
		defer rec.ReleaseRing(cn.ring)
	}
	defer cn.teardown()
	for {
		cn.grow(1)
		n, err := cn.c.Read(cn.in[len(cn.in):cap(cn.in)])
		if n > 0 {
			cn.in = cn.in[:len(cn.in)+n]
			if perr := cn.processBurst(); perr != nil {
				return
			}
		}
		if err != nil {
			return // EOF, conn closed, or a framing error we cannot answer
		}
		if cn.dead.Load() {
			return
		}
	}
}
