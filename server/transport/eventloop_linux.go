//go:build linux

// Shared epoll event loops: the Linux connection I/O driver.
//
// PR5 spent two goroutines per connection (a frame reader and a Peek
// monitor); with pipelining the monitor is gone, and on Linux the
// reader goroutine goes too. A small fixed set of loops (one per core
// by default) owns every idle connection: each loop parks in one
// epoll_wait covering all its connections, and a readable burst is
// drained with raw reads into the connection's accumulation buffer and
// processed inline — decode, batch, execute, coalesced flush — without
// a goroutine switch. The Go runtime's netpoller still backs the WRITE
// side (responses go out via net.Conn.Write, which handles partial
// writes and EAGAIN), so the loops only ever drive reads.
//
// Ownership rule: the loop that owns a connection is the only code
// that closes its socket. The host's Close marks connections dead and
// shuts their read side; the loop observes that (EOF or the dead flag
// after a wake) and tears the connection down itself. An fd number is
// therefore never reused while a loop might still read it.
//
// Blocking ops never hold a loop: dispatchBlocking and
// dispatchReplicate move them to dedicated goroutines, so a connection
// parked in BTAKE/WAIT or pumping a replication stream costs its loop
// nothing and later requests from other connections keep flowing.
package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"syscall"

	"tbtm/internal/telemetry"
)

var errNotPollable = errors.New("server: connection not pollable")

// burstReadBound caps how many bytes one connection may drain per
// event so a firehose connection cannot starve its loop's siblings;
// level-triggered epoll re-arms for the remainder.
const burstReadBound = 1 << 20

// NewLoopSet starts n epoll loops over host, each owning one permanent
// flight-recorder ring (rec may be nil). An error (fd limits) returns
// nil; the caller falls back to ServeFallback for every connection.
func NewLoopSet(host Host, n int, rec *telemetry.Recorder) (*LoopSet, error) {
	ls := &LoopSet{host: host}
	for i := 0; i < n; i++ {
		l, err := newEvloop(ls, rec)
		if err != nil {
			for _, p := range ls.loops {
				p.wake() // loops exit on wake once the host is closed; at
				// construction failure they own no conns and just die
				p.closeFDs()
			}
			return nil, err
		}
		ls.loops = append(ls.loops, l)
		ls.wg.Add(1)
		go l.run()
	}
	return ls, nil
}

type evloop struct {
	ls    *LoopSet
	epfd  int
	wakeR int // pipe read end, registered in epfd
	wakeW int

	// ring is the loop's flight-recorder sink; every connection the loop
	// owns records into it (single-writer in steady state — the loop
	// processes its connections serially).
	ring *telemetry.Ring

	mu    sync.Mutex
	conns map[int]*Conn // by fd
}

func newEvloop(ls *LoopSet, rec *telemetry.Recorder) (*evloop, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	l := &evloop{ls: ls, epfd: epfd, wakeR: p[0], wakeW: p[1], conns: make(map[int]*Conn),
		ring: rec.Ring()}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p[0])}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p[0], &ev); err != nil {
		l.closeFDs()
		return nil, err
	}
	return l, nil
}

func (l *evloop) closeFDs() {
	syscall.Close(l.epfd)
	syscall.Close(l.wakeR)
	syscall.Close(l.wakeW)
}

// add registers a connection with the loop. The fd is extracted once;
// the socket stays open (and the fd number stable) until this loop's
// teardown closes it, per the ownership rule above.
func (l *evloop) add(cn *Conn) error {
	tc, ok := cn.c.(*net.TCPConn)
	if !ok {
		return errNotPollable
	}
	sc, err := tc.SyscallConn()
	if err != nil {
		return err
	}
	fd := -1
	if cerr := sc.Control(func(f uintptr) { fd = int(f) }); cerr != nil {
		return cerr
	}
	cn.fd = fd
	cn.ring = l.ring
	l.mu.Lock()
	l.conns[fd] = cn
	l.mu.Unlock()
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(fd)}
	if err := syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		l.mu.Lock()
		delete(l.conns, fd)
		l.mu.Unlock()
		cn.fd = -1
		return err
	}
	return nil
}

// wake nudges the loop out of epoll_wait (to sweep dead connections
// and, once the host is closed and empty, to exit). Safe from any
// goroutine; a full pipe already guarantees a pending wake.
func (l *evloop) wake() {
	var b [1]byte
	for {
		_, err := syscall.Write(l.wakeW, b[:])
		if err != syscall.EINTR {
			return
		}
	}
}

func (l *evloop) drainWake() {
	var b [64]byte
	for {
		n, err := syscall.Read(l.wakeR, b[:])
		if n < len(b) || err != nil {
			return
		}
	}
}

func (l *evloop) run() {
	defer l.ls.wg.Done()
	defer l.closeFDs()
	events := make([]syscall.EpollEvent, 64)
	for {
		n, err := syscall.EpollWait(l.epfd, events, -1)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		woken := false
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			if fd == l.wakeR {
				l.drainWake()
				woken = true
				continue
			}
			l.mu.Lock()
			cn := l.conns[fd]
			l.mu.Unlock()
			if cn == nil {
				continue
			}
			if cn.dead.Load() || cn.readAndProcess() != nil {
				l.detach(cn)
			}
		}
		if woken || l.ls.host.Closed() {
			if l.sweep() {
				return
			}
		}
	}
}

// sweep tears down dead connections and reports whether the loop
// should exit (host closed and nothing left to own).
func (l *evloop) sweep() bool {
	l.mu.Lock()
	var dead []*Conn
	for _, cn := range l.conns {
		if cn.dead.Load() {
			dead = append(dead, cn)
		}
	}
	remaining := len(l.conns) - len(dead)
	l.mu.Unlock()
	for _, cn := range dead {
		l.detach(cn)
	}
	return l.ls.host.Closed() && remaining == 0
}

func (l *evloop) detach(cn *Conn) {
	if cn.fd >= 0 {
		_ = syscall.EpollCtl(l.epfd, syscall.EPOLL_CTL_DEL, cn.fd, nil)
		l.mu.Lock()
		delete(l.conns, cn.fd)
		l.mu.Unlock()
	}
	cn.teardown()
}

// readAndProcess drains the readable socket into the accumulation
// buffer (the listener's sockets are non-blocking) and processes the
// buffered burst. A non-nil return tears the connection down.
func (cn *Conn) readAndProcess() error {
	total := 0
	for total < burstReadBound {
		cn.grow(1)
		n, err := syscall.Read(cn.fd, cn.in[len(cn.in):cap(cn.in)])
		if n > 0 {
			cn.in = cn.in[:len(cn.in)+n]
			total += n
		}
		if err == syscall.EAGAIN {
			break
		}
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return err
		}
		if n == 0 {
			return io.EOF
		}
	}
	if total == 0 {
		return nil // spurious wakeup
	}
	return cn.processBurst()
}
