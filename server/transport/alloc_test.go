package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"tbtm"
	"tbtm/internal/telemetry"
	"tbtm/server/engine"
	"tbtm/server/wire"
)

// The transport's allocation contract: between the socket and the
// engine's zero-alloc warm paths, the conn layer must not squander the
// budget. The direct-mapped key cache converts wire bytes to map string
// keys once per key (TestKeyStringCacheAllocs), the pipelined decode→
// batch→execute→encode cycle amortizes to ≤1 alloc/op
// (TestWarmPipelinedBurstAllocs), and the coalescing response writer is
// zero-alloc warm (TestResponseWriterFlushAllocs).

// stubHost is the minimal Host a decode-level Conn test needs: never
// closed, no drain accounting, no stats, no replication.
type stubHost struct {
	tm *tbtm.TM
}

func (h *stubHost) Closed() bool                  { return false }
func (h *stubHost) InflightAdd(delta int64)       {}
func (h *stubHost) NewCancelVar() *tbtm.Var[bool] { return tbtm.NewVar(h.tm, false) }
func (h *stubHost) CancelBlocked(v *tbtm.Var[bool]) {
	th := h.tm.NewThread()
	_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error { return v.Write(tx, true) })
}
func (h *stubHost) StatsJSON() ([]byte, error) { return []byte("{}"), nil }
func (h *stubHost) ConnDone(cn *Conn)          {}
func (h *stubHost) Replicate(st *Stream, afterSeq uint64) error {
	return fmt.Errorf("transport test host: no WAL")
}
func (h *stubHost) TraceJSON(max int) ([]byte, error) {
	return []byte(`{"armed":false,"events":[]}`), nil
}

// newTestConn wires a Conn to a fresh engine with the write side pointed
// at io.Discard, the way the composition root would minus the socket.
func newTestConn(t *testing.T) (*Conn, *engine.Store, *engine.Executor) {
	t.Helper()
	tm, err := tbtm.New(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithBlockingRetry(),
		tbtm.WithAutoClassify(0),
	)
	if err != nil {
		t.Fatalf("tbtm.New: %v", err)
	}
	store := engine.NewStore(tm, 1024)
	exec := engine.NewExecutor(tm, 2, 1, &engine.Metrics{})
	cn := NewConn(&stubHost{tm: tm}, Config{MaxFrame: wire.DefaultMaxFrame, MaxBatch: 64}, exec, store, nil)
	cn.w = io.Discard
	return cn, store, exec
}

// TestKeyStringCacheAllocs pins the conn layer's direct-mapped key
// cache: a client hammering a small working set of keys converts the
// wire bytes to the store's string key once per key, not once per
// request — a pipelined burst touches several keys, so the cache must
// hold more than one.
func TestKeyStringCacheAllocs(t *testing.T) {
	cn := &Conn{}
	wireKey := []byte("hot-key")
	if got := cn.keyString(wireKey); got != "hot-key" {
		t.Fatalf("keyString = %q", got)
	}
	if n := testing.AllocsPerRun(200, func() {
		if cn.keyString(wireKey) != "hot-key" {
			t.Fatal("cache miss on identical key")
		}
	}); n > 0 {
		t.Errorf("cached keyString: %.1f allocs/op, want 0", n)
	}
	// A working set of keys in DISTINCT slots stays cached as a whole:
	// no key evicts another, so a warm multi-key burst converts nothing.
	keys := distinctSlotKeys(t, 4)
	for _, k := range keys {
		if got := cn.keyString([]byte(k)); got != k {
			t.Fatalf("keyString(%q) = %q", k, got)
		}
	}
	wires := make([][]byte, len(keys))
	for i, k := range keys {
		wires[i] = []byte(k)
	}
	if n := testing.AllocsPerRun(200, func() {
		for i, w := range wires {
			if cn.keyString(w) != keys[i] {
				t.Fatal("cache miss on resident key")
			}
		}
	}); n > 0 {
		t.Errorf("cached multi-key keyString: %.1f allocs/op, want 0", n)
	}
	// A colliding key replaces its slot's entry and still works.
	if got := cn.keyString([]byte("other")); got != "other" {
		t.Fatalf("keyString after change = %q", got)
	}
}

// distinctSlotKeys generates n keys mapping to pairwise distinct cache
// slots, so a test working set cannot self-evict.
func distinctSlotKeys(t *testing.T, n int) []string {
	t.Helper()
	used := make(map[int]bool)
	var keys []string
	for i := 0; len(keys) < n && i < 256; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s := keySlot([]byte(k)); !used[s] {
			used[s] = true
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d distinct-slot keys", n)
	}
	return keys
}

// TestWarmPipelinedBurstAllocs pins the whole pipelined fast path: a
// warm burst of 16 GETs — decode, batch accumulation, one shared
// lease, one read-only transaction, response encode, coalesced flush —
// amortizes to at most 1 alloc per op WITH the flight recorder armed
// and recording every phase event (the recorder's record path is part
// of the warm path's allocation contract).
func TestWarmPipelinedBurstAllocs(t *testing.T) {
	cn, store, exec := newTestConn(t)
	rec := telemetry.NewRecorder(256)
	cn.ring = rec.Ring()
	if !rec.Armed() {
		t.Fatal("recorder should arm by default")
	}
	keys := distinctSlotKeys(t, 4)
	for _, k := range keys {
		if err := exec.Do(nil, wire.OpSet, false, func(th *tbtm.Thread) error {
			return store.Set(th, k, []byte("payload"))
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Prebuild a 16-GET burst over the resident working set.
	const burstOps = 16
	var burst []byte
	var payload []byte
	for i := 0; i < burstOps; i++ {
		payload = binary.AppendUvarint(payload[:0], uint64(i+1))
		payload = append(payload, byte(wire.OpGet))
		payload = wire.AppendString(payload, keys[i%len(keys)])
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		burst = append(burst, hdr[:]...)
		burst = append(burst, payload...)
	}
	doBurst := func() {
		cn.in = append(cn.in[:0], burst...)
		cn.inoff = 0
		if err := cn.processBurst(); err != nil {
			t.Fatalf("burst: %v", err)
		}
	}
	for i := 0; i < 64; i++ { // warm buffers, cache, descriptors
		doBurst()
	}
	if n := testing.AllocsPerRun(200, doBurst); n > burstOps {
		t.Errorf("warm pipelined 16-GET burst: %.1f allocs (%.2f/op), want <= 1/op",
			n, n/burstOps)
	}
	if rec.Recorded() == 0 {
		t.Fatal("armed recorder saw no events across warm bursts")
	}
}

// TestResponseWriterFlushAllocs pins the coalescing writer: queueing a
// warm response frame and flushing the wire allocates nothing.
func TestResponseWriterFlushAllocs(t *testing.T) {
	cn, _, _ := newTestConn(t)
	cycle := func() {
		b := cn.beginResp(42)
		b = append(b, byte(wire.StatusOK))
		b = wire.AppendBytes(b, []byte("response-payload"))
		cn.queueResp(b)
		if err := cn.flushWire(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n > 0 {
		t.Errorf("response queue+flush: %.1f allocs/op, want 0", n)
	}
}
