//go:build !linux

package transport

import "tbtm/internal/telemetry"

// This platform has no shared-poller driver; the host falls back to one
// reader goroutine per connection (ServeFallback), where the Go
// runtime's netpoller is the event loop.

// LoopSet is a stub so the platform-independent composition code
// compiles; NewLoopSet never returns a usable one here.
type LoopSet struct{}

// NewLoopSet reports no shared-poller driver on this platform.
func NewLoopSet(host Host, n int, rec *telemetry.Recorder) (*LoopSet, error) { return nil, nil }

// Attach always declines; every connection uses ServeFallback.
func (ls *LoopSet) Attach(cn *Conn) bool { return false }

// Wake is a no-op without loops.
func (ls *LoopSet) Wake() {}

// Wait is a no-op without loops.
func (ls *LoopSet) Wait() {}
