package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"tbtm/server/wire"
)

// TestBatchCasIndependenceDeterministic drives the conn layer directly
// — no TCP timing — so the window provably decodes into ONE batch, then
// asserts the batch-atomicity policy: per-op CAS results, one shared
// commit window, reads seeing the batch's earlier writes. (The same
// policy over a real socket is pinned by the root server tests.)
func TestBatchCasIndependenceDeterministic(t *testing.T) {
	cn, _, exec := newTestConn(t)
	var out bytes.Buffer
	cn.w = &out

	var burst []byte
	var payload []byte
	frame := func(build func([]byte) []byte) {
		payload = build(payload[:0])
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		burst = append(burst, hdr[:]...)
		burst = append(burst, payload...)
	}
	single := func(seq uint64, op wire.Op, key string, rest ...[]byte) {
		frame(func(b []byte) []byte {
			b = binary.AppendUvarint(b, seq)
			b = append(b, byte(op))
			b = wire.AppendString(b, key)
			for _, r := range rest {
				b = append(b, r...)
			}
			return b
		})
	}
	lp := func(p []byte) []byte { return wire.AppendBytes(nil, p) }

	single(1, wire.OpSet, "a", lp([]byte("1")))
	single(2, wire.OpCas, "a", []byte{1}, lp([]byte("wrong")), lp([]byte("x")))
	single(3, wire.OpSet, "b", lp([]byte("2")))
	single(4, wire.OpGet, "a")
	single(5, wire.OpGet, "b")

	cn.in = append(cn.in[:0], burst...)
	if err := cn.processBurst(); err != nil {
		t.Fatalf("processBurst: %v", err)
	}
	// One burst of five batchable ops = exactly one executor batch.
	if got := exec.Metrics().BatchCount(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
	if got := exec.Metrics().BatchedOps(); got != 5 {
		t.Fatalf("batched ops = %d, want 5", got)
	}

	read := func() (uint64, wire.Status, []byte) {
		t.Helper()
		var hdr [4]byte
		p, _, err := wire.ReadFrame(&out, &hdr, nil, wire.DefaultMaxFrame)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		seq, body, err := wire.TakeUvarint(p)
		if err != nil {
			t.Fatalf("seq: %v", err)
		}
		st, body, err := wire.TakeByte(body)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		return seq, wire.Status(st), body
	}
	for want := uint64(1); want <= 5; want++ {
		seq, st, body := read()
		if seq != want {
			t.Fatalf("response order: seq %d, want %d", seq, want)
		}
		switch want {
		case 2: // failed CAS: StatusOK, swapped = 0
			if st != wire.StatusOK || len(body) != 1 || body[0] != 0 {
				t.Fatalf("cas reply: status %d body %v, want OK/0", st, body)
			}
		case 4: // read of a key the SAME batch wrote
			v, _, err := wire.TakeBytes(body)
			if st != wire.StatusOK || err != nil || !bytes.Equal(v, []byte("1")) {
				t.Fatalf("get a: status %d val %q err %v, want \"1\"", st, v, err)
			}
		case 5:
			v, _, err := wire.TakeBytes(body)
			if st != wire.StatusOK || err != nil || !bytes.Equal(v, []byte("2")) {
				t.Fatalf("get b: status %d val %q err %v, want \"2\"", st, v, err)
			}
		default:
			if st != wire.StatusOK {
				t.Fatalf("seq %d: status %d, want OK", want, st)
			}
		}
	}
}
