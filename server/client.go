package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"
)

// Client is a tbtmd connection. A Client carries one request at a time
// and is NOT safe for concurrent use; open one Client per goroutine
// (connections are cheap — it is engine Threads the server pools, not
// sockets). Blocking calls (BTake, Wait) return only when the server
// answers: a remote commit changes the watched key, or shutdown wakes
// the parked transaction (ErrServerClosed).
//
// To keep many requests outstanding on the connection, use Pipe.
type Client struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	hdr [4]byte

	seq      uint64 // last assigned request sequence ID
	out      []byte // reusable request build buffer
	in       []byte // reusable response frame buffer
	maxFrame int
}

// Dial connects to a tbtmd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout is Dial with a connect timeout (0 = none).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:        c,
		br:       bufio.NewReader(c),
		bw:       bufio.NewWriter(c),
		maxFrame: DefaultMaxFrame,
	}
}

// Close closes the connection. Closing while a blocking call is in
// flight (from another goroutine) unblocks it with an error — the one
// concurrency the Client supports.
func (c *Client) Close() error { return c.c.Close() }

// newReq assigns the next sequence ID and starts a request payload:
// uvarint sequence ID, opcode byte.
func (c *Client) newReq(op Op) []byte {
	c.seq++
	req := binary.AppendUvarint(c.out[:0], c.seq)
	return append(req, byte(op))
}

// roundTrip sends the built request payload and returns the response
// status and payload (valid until the next call). The synchronous
// Client has exactly one request outstanding, so the echoed sequence
// ID must match the one just assigned.
func (c *Client) roundTrip(req []byte) (Status, []byte, error) {
	c.out = req[:0]
	if err := writeFrame(c.bw, &c.hdr, req); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	payload, buf, err := readFrame(c.br, &c.hdr, c.in, c.maxFrame)
	c.in = buf
	if err != nil {
		return 0, nil, err
	}
	seq, p, err := takeUvarint(payload)
	if err != nil {
		return 0, nil, err
	}
	if seq != c.seq {
		return 0, nil, fmt.Errorf("server: response for sequence %d, want %d", seq, c.seq)
	}
	if len(p) == 0 {
		return 0, nil, errTruncated
	}
	return Status(p[0]), p[1:], nil
}

// err maps non-OK statuses to errors (StatusNotFound is handled by the
// typed accessors, not here).
func statusErr(st Status, p []byte) error {
	switch st {
	case StatusOK, StatusNotFound:
		return nil
	case StatusClosed:
		return ErrServerClosed
	case StatusReadOnly:
		// The reason byte distinguishes a replica (fail over to the
		// primary) from a degraded primary (operator attention); its
		// absence means a pre-replication server — WAL degradation.
		if b, _, err := takeByte(p); err == nil && b == ReadOnlyReplica {
			return ErrReplicaRead
		}
		return ErrReadOnlyMode
	case StatusError:
		msg, _, err := takeBytes(p)
		if err != nil {
			return fmt.Errorf("server: error response (unreadable message)")
		}
		return errors.New(string(msg))
	}
	return fmt.Errorf("server: unknown response status %d", st)
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	st, p, err := c.roundTrip(c.newReq(OpPing))
	if err != nil {
		return err
	}
	return statusErr(st, p)
}

// Get reads key. ok is false when the key does not exist. The returned
// slice is valid until the next call on this Client.
func (c *Client) Get(key string) (val []byte, ok bool, err error) {
	req := appendString(c.newReq(OpGet), key)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, false, err
	}
	if st == StatusNotFound {
		return nil, false, nil
	}
	if err := statusErr(st, p); err != nil {
		return nil, false, err
	}
	v, _, err := takeBytes(p)
	return v, true, err
}

// Set writes key = val.
func (c *Client) Set(key string, val []byte) error {
	req := appendString(c.newReq(OpSet), key)
	req = appendBytes(req, val)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return statusErr(st, p)
}

// Del removes key, reporting whether it existed.
func (c *Client) Del(key string) (deleted bool, err error) {
	req := appendString(c.newReq(OpDel), key)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return false, err
	}
	if err := statusErr(st, p); err != nil {
		return false, err
	}
	b, _, err := takeByte(p)
	return b != 0, err
}

// Cas compares-and-swaps: when expectPresent, the swap succeeds iff key
// holds exactly expect; when !expectPresent, iff key is absent
// (create-if-absent). On success key is set to val.
func (c *Client) Cas(key string, expect []byte, expectPresent bool, val []byte) (swapped bool, err error) {
	req := appendString(c.newReq(OpCas), key)
	req = append(req, boolByte(expectPresent))
	req = appendBytes(req, expect)
	req = appendBytes(req, val)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return false, err
	}
	if err := statusErr(st, p); err != nil {
		return false, err
	}
	b, _, err := takeByte(p)
	return b != 0, err
}

// KV is one pair of a Range reply.
type KV struct {
	Key string
	Val []byte
}

// Range returns up to limit pairs with from <= key < to in ascending
// order, as ONE consistent snapshot (a long read-only transaction
// server-side). to == "" means unbounded above; limit 0 means no limit.
func (c *Client) Range(from, to string, limit int) ([]KV, error) {
	req := appendString(c.newReq(OpRange), from)
	req = appendString(req, to)
	req = binary.AppendUvarint(req, uint64(limit))
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if err := statusErr(st, p); err != nil {
		return nil, err
	}
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation by what the payload could possibly hold
	// (each pair takes at least two length bytes): a corrupt count must
	// not translate into a giant allocation before decode detects it.
	capHint := n
	if max := uint64(len(p)) / 2; capHint > max {
		capHint = max
	}
	out := make([]KV, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var k, v []byte
		if k, p, err = takeBytes(p); err != nil {
			return nil, err
		}
		if v, p, err = takeBytes(p); err != nil {
			return nil, err
		}
		out = append(out, KV{Key: string(k), Val: append([]byte(nil), v...)})
	}
	return out, nil
}

// MultiOp is one operation of a MultiExec script.
type MultiOp struct {
	// Op must be OpGet, OpSet, OpDel or OpCas.
	Op            Op
	Key           string
	Val           []byte
	Expect        []byte
	ExpectPresent bool
}

// MGet, MSet, MDel and MCas build script entries.
func MGet(key string) MultiOp           { return MultiOp{Op: OpGet, Key: key} }
func MSet(key string, v []byte) MultiOp { return MultiOp{Op: OpSet, Key: key, Val: v} }
func MDel(key string) MultiOp           { return MultiOp{Op: OpDel, Key: key} }

// MCas builds a CAS entry; see Client.Cas for the semantics. A failed
// CAS aborts the whole script.
func MCas(key string, expect []byte, expectPresent bool, v []byte) MultiOp {
	return MultiOp{Op: OpCas, Key: key, Expect: expect, ExpectPresent: expectPresent, Val: v}
}

// MultiResult is the outcome of one script operation. OK means: found
// (get), deleted (del), swapped (cas); always true for set.
type MultiResult struct {
	OK  bool
	Val []byte // get only
}

// MultiExec runs the script as one atomic transaction server-side.
// committed reports whether it took effect: a failed CAS rolls the
// whole script back and returns committed = false, with results
// covering the ops up to and including the failed one. Reads in a
// committed script observe the script's own earlier writes.
func (c *Client) MultiExec(ops []MultiOp) (results []MultiResult, committed bool, err error) {
	req := c.newReq(OpMulti)
	req = binary.AppendUvarint(req, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		req = append(req, byte(op.Op))
		req = appendString(req, op.Key)
		switch op.Op {
		case OpGet, OpDel:
		case OpSet:
			req = appendBytes(req, op.Val)
		case OpCas:
			req = append(req, boolByte(op.ExpectPresent))
			req = appendBytes(req, op.Expect)
			req = appendBytes(req, op.Val)
		default:
			return nil, false, fmt.Errorf("server: opcode %s not valid in multi", op.Op)
		}
	}
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, false, err
	}
	if err := statusErr(st, p); err != nil {
		return nil, false, err
	}
	cb, p, err := takeByte(p)
	if err != nil {
		return nil, false, err
	}
	committed = cb != 0
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, false, err
	}
	results = make([]MultiResult, 0, n)
	for i := uint64(0); int(i) < int(n) && int(i) < len(ops); i++ {
		var sb byte
		if sb, p, err = takeByte(p); err != nil {
			return nil, false, err
		}
		res := MultiResult{}
		switch ops[i].Op {
		case OpGet:
			res.OK = Status(sb) == StatusOK
			if res.OK {
				var v []byte
				if v, p, err = takeBytes(p); err != nil {
					return nil, false, err
				}
				res.Val = append([]byte(nil), v...)
			}
		case OpSet:
			res.OK = Status(sb) == StatusOK
		case OpDel, OpCas:
			var b byte
			if b, p, err = takeByte(p); err != nil {
				return nil, false, err
			}
			res.OK = b != 0
		}
		results = append(results, res)
	}
	return results, committed, nil
}

// BTake blocks until key exists, then atomically deletes it and returns
// its value. Woken by server shutdown it returns ErrServerClosed.
func (c *Client) BTake(key string) ([]byte, error) {
	req := appendString(c.newReq(OpBTake), key)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if err := statusErr(st, p); err != nil {
		return nil, err
	}
	v, _, err := takeBytes(p)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// Wait blocks until key's state differs from (old, oldPresent), then
// returns the new state. Woken by server shutdown it returns
// ErrServerClosed.
func (c *Client) Wait(key string, old []byte, oldPresent bool) (val []byte, present bool, err error) {
	req := appendString(c.newReq(OpWait), key)
	req = append(req, boolByte(oldPresent))
	req = appendBytes(req, old)
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, false, err
	}
	if err := statusErr(st, p); err != nil {
		return nil, false, err
	}
	pb, p, err := takeByte(p)
	if err != nil {
		return nil, false, err
	}
	if pb == 0 {
		return nil, false, nil
	}
	v, _, err := takeBytes(p)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), v...), true, nil
}

// Stats fetches the server's engine and executor counters.
func (c *Client) Stats() (StatsReply, error) {
	var reply StatsReply
	st, p, err := c.roundTrip(c.newReq(OpStats))
	if err != nil {
		return reply, err
	}
	if err := statusErr(st, p); err != nil {
		return reply, err
	}
	doc, _, err := takeBytes(p)
	if err != nil {
		return reply, err
	}
	return reply, json.Unmarshal(doc, &reply)
}

// Trace fetches the server's flight-recorder dump — the merged,
// time-ordered phase events — as a raw JSON document. max bounds the
// event count (0 = the server default).
func (c *Client) Trace(max int) ([]byte, error) {
	req := binary.AppendUvarint(c.newReq(OpTrace), uint64(max))
	st, p, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if err := statusErr(st, p); err != nil {
		return nil, err
	}
	doc, _, err := takeBytes(p)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), doc...), nil
}
