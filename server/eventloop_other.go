//go:build !linux

package server

// newEventLoops reports no shared-poller driver on this platform; the
// server falls back to one reader goroutine per connection, where the
// Go runtime's netpoller is the event loop.
func newEventLoops(s *Server, n int) ([]*evloop, error) {
	return nil, nil
}

// evloop is a stub so the platform-independent server code compiles;
// it is never instantiated here.
type evloop struct{}

func (l *evloop) add(cn *pconn) error { return nil }
func (l *evloop) wake()               {}
