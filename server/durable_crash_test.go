package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tbtm/internal/wal"
)

// TestCrashTortureBankServer is the end-to-end durability torture: a
// bank of accounts with a fixed total balance, concurrent transfer
// clients over real TCP connections, and a crash (lossy MemFS clone at
// a random point) instead of a clean shutdown — repeated across many
// randomized crash points. After each crash the server is rebuilt from
// whatever the "disk" kept and must satisfy:
//
//   - conservation: the account balances sum to the seeded total;
//   - no negatives: every balance is >= 0 (transfers check funds);
//   - acked durability (strict mode): every transfer acknowledged
//     before the crash point is reflected — verified via a
//     monotonically increasing counter key whose recovered value must
//     be at least the highest acknowledged write.
//
// The acked-bookkeeping is frozen BEFORE the clone is taken, so an ack
// that races the crash is never counted against the recovered state.
func TestCrashTortureBankServer(t *testing.T) {
	iters := 50
	if testing.Short() {
		iters = 10
	}
	const (
		accounts = 8
		initial  = 100
		workers  = 3
	)

	fs := wal.NewMemFS()
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(0xBA2C + it)))
		srv, err := New(Config{DataDir: "bank", WALFS: fs, Durability: "strict",
			SegmentBytes: 4096, CheckpointBytes: 16384})
		if err != nil {
			t.Fatalf("iter %d: New: %v", it, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()

		// First iteration seeds the bank; later ones inherit the
		// recovered state and only verify + continue the workload.
		seedCl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			for i := 0; i < accounts; i++ {
				if err := seedCl.Set(fmt.Sprintf("acct:%d", i), []byte(strconv.Itoa(initial))); err != nil {
					t.Fatalf("seed: %v", err)
				}
			}
			if err := seedCl.Set("counter", []byte("0")); err != nil {
				t.Fatal(err)
			}
		} else {
			verifyBank(t, it, seedCl, accounts, accounts*initial, 0)
		}
		// Recovered floor for the counter this round.
		cv, ok, err := seedCl.Get("counter")
		if err != nil || !ok {
			t.Fatalf("iter %d: counter missing (err=%v)", it, err)
		}
		counterFloor, _ := strconv.Atoi(string(cv))
		seedCl.Close()

		// frozen flips before the crash clone is taken; acks that land
		// after it are NOT recorded, so ackedCounter is a sound lower
		// bound on what the clone must contain.
		var frozen atomic.Bool
		var ackedCounter atomic.Int64
		ackedCounter.Store(int64(counterFloor))
		var completed atomic.Int64

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl, err := Dial(addr)
				if err != nil {
					return
				}
				defer cl.Close()
				wrng := rand.New(rand.NewSource(int64(it*31 + w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := wrng.Intn(accounts)
					j := wrng.Intn(accounts)
					if i == j {
						continue
					}
					ki, kj := fmt.Sprintf("acct:%d", i), fmt.Sprintf("acct:%d", j)
					vi, oki, err := cl.Get(ki)
					if err != nil {
						return
					}
					vj, okj, err := cl.Get(kj)
					if err != nil {
						return
					}
					if !oki || !okj {
						t.Errorf("iter %d: account missing mid-run", it)
						return
					}
					bi, _ := strconv.Atoi(string(vi))
					bj, _ := strconv.Atoi(string(vj))
					if bi == 0 {
						continue
					}
					_, committed, err := cl.MultiExec([]MultiOp{
						MCas(ki, vi, true, []byte(strconv.Itoa(bi-1))),
						MCas(kj, vj, true, []byte(strconv.Itoa(bj+1))),
					})
					if err != nil {
						return
					}
					if committed {
						completed.Add(1)
					}
				}
			}(w)
		}
		// The counter worker: strictly increasing Set acks give us the
		// durability floor to check after recovery.
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				return
			}
			defer cl.Close()
			for n := counterFloor + 1; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Set("counter", []byte(strconv.Itoa(n))); err != nil {
					return
				}
				completed.Add(1)
				// The ack happened before the freeze check: only then is
				// it guaranteed to precede the crash clone.
				if !frozen.Load() {
					ackedCounter.Store(int64(n))
				}
			}
		}()

		// Let a random number of operations complete, then crash.
		cut := int64(rng.Intn(40) + 5)
		deadline := time.Now().Add(5 * time.Second)
		for completed.Load() < cut && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		frozen.Store(true)
		crashFS := fs.CrashClone(rng)
		close(stop)
		wg.Wait()
		srv.Close()
		ln.Close()

		// Recover from the lossy clone and sweep.
		fs = crashFS
		rsrv, err := New(Config{DataDir: "bank", WALFS: fs, Durability: "strict"})
		if err != nil {
			t.Fatalf("iter %d: recovery New: %v", it, err)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go rsrv.Serve(rln)
		rcl, err := Dial(rln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		verifyBank(t, it, rcl, accounts, accounts*initial, ackedCounter.Load())
		rcl.Close()
		if err := rsrv.Close(); err != nil && !errors.Is(err, ErrServerClosed) {
			t.Fatalf("iter %d: close recovered: %v", it, err)
		}
		rln.Close()
		if t.Failed() {
			t.Fatalf("iter %d: bank invariants violated after crash", it)
		}
	}
}

// verifyBank asserts conservation, non-negativity, and the acked
// counter floor on a freshly recovered server.
func verifyBank(t *testing.T, it int, cl *Client, accounts, total int, ackedFloor int64) {
	t.Helper()
	pairs, err := cl.Range("acct:", "acct;", 0)
	if err != nil {
		t.Fatalf("iter %d: range: %v", it, err)
	}
	if len(pairs) != accounts {
		t.Fatalf("iter %d: recovered %d accounts, want %d", it, len(pairs), accounts)
	}
	sum := 0
	for _, kv := range pairs {
		b, err := strconv.Atoi(string(kv.Val))
		if err != nil {
			t.Fatalf("iter %d: %s holds %q", it, kv.Key, kv.Val)
		}
		if b < 0 {
			t.Fatalf("iter %d: %s went negative: %d", it, kv.Key, b)
		}
		sum += b
	}
	if sum != total {
		t.Fatalf("iter %d: balances sum to %d, want %d (money %s)",
			it, sum, total, map[bool]string{true: "created", false: "destroyed"}[sum > total])
	}
	cv, ok, err := cl.Get("counter")
	if err != nil || !ok {
		t.Fatalf("iter %d: counter missing after recovery (err=%v)", it, err)
	}
	got, _ := strconv.Atoi(string(cv))
	if int64(got) < ackedFloor {
		t.Fatalf("iter %d: counter recovered as %d, below acked floor %d — an acknowledged strict-mode write was lost", it, got, ackedFloor)
	}
}
