// Durability: the write-ahead path between the in-memory engine and
// internal/wal.
//
// With Config.DataDir set, every update operation logs its EFFECTIVE
// write set — one WAL record per committed transaction — and replies
// only after the record is acknowledged per the configured mode
// (none/relaxed/strict; see wal.Mode). Reads never touch the WAL.
//
// The ordering contract between commits and checkpoints is a single
// RWMutex, the checkpoint gate. Every update path holds the READ side
// across [engine commit → WAL sequence assignment]; the checkpointer
// takes the WRITE side for the instant it reads LastAssignedSeq as the
// checkpoint's upper bound S, then releases it and snapshots. That
// interlock proves the recovery invariant:
//
//   - while the gate is held exclusively, no commit sits between "took
//     effect in the engine" and "has a WAL seq", so every commit with
//     seq <= S is already engine-visible and the RANGE snapshot taken
//     AFTER the gate drops observes it;
//   - any commit that lands after the gate drops gets seq > S and is
//     replayed over the checkpoint at recovery;
//   - a commit both visible in the snapshot and replayed (seq > S but
//     committed before the snapshot began) is harmless: replay resolves
//     per key by highest (epoch, commit tick), which the snapshot value
//     already carries.
//
// The WAL ticket is waited on AFTER the gate is released, so the gate
// is held only for the in-memory commit plus an in-memory encode —
// never across an fsync — and a checkpoint can never be delayed by
// group-commit latency. Blocking operations (BTAKE) are restructured so
// they never PARK under the gate either: parking waits for the key's
// existence outside the gate, and only the non-blocking take attempt
// runs under it.
//
// Failure policy: the first WAL I/O error (ENOSPC, EIO, a failed
// fsync) wedges the log permanently and flips the server to read-only.
// Reads keep being served from memory; updates answer StatusReadOnly.
// An update whose engine commit succeeded but whose WAL write failed
// also answers StatusReadOnly: the contract is "acknowledged implies
// durable", not "unacknowledged implies absent" — the in-memory value
// may survive until restart, and recovery serves the last durable
// state.
package server

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/wal"
)

// ErrReadOnlyMode reports an update refused — or an update whose
// durability could not be guaranteed — because the server degraded to
// read-only after a write-ahead-log I/O failure. Reads still succeed.
var ErrReadOnlyMode = errors.New("server: read-only (write-ahead log failed)")

// durability is the store's write-ahead state; nil when the server runs
// without a data directory (every path then short-circuits to the plain
// in-memory methods, preserving their allocation profile).
type durability struct {
	log *wal.Log
	// gate is the checkpoint gate described in the package comment.
	gate sync.RWMutex
	// readOnly flips (once, permanently) when the WAL wedges; checked
	// first on every update path and exported via STATS.
	readOnly atomic.Bool
}

// settle waits out a WAL ticket per the log's mode and maps WAL
// failures into the wire error space. The zero Ticket (nothing was
// appended) settles immediately.
func (d *durability) settle(tk wal.Ticket, werr error) error {
	if werr == nil {
		werr = tk.Wait()
	}
	if werr == nil {
		return nil
	}
	if errors.Is(werr, wal.ErrClosed) {
		return ErrServerClosed
	}
	return ErrReadOnlyMode
}

// setDurable is set with WAL: commit and append under the gate, wait
// outside it.
func (s *store) setDurable(th *tbtm.Thread, key string, val []byte) error {
	d := s.dur
	if d.readOnly.Load() {
		return ErrReadOnlyMode
	}
	d.gate.RLock()
	err := s.setMem(th, key, val)
	var tk wal.Ticket
	var werr error
	if err == nil {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Key: key, Val: val}})
	}
	d.gate.RUnlock()
	if err != nil {
		return err
	}
	return d.settle(tk, werr)
}

// delDurable logs the delete only when it took effect (deleting an
// absent key commits nothing and writes nothing).
func (s *store) delDurable(th *tbtm.Thread, key string) (bool, error) {
	d := s.dur
	if d.readOnly.Load() {
		return false, ErrReadOnlyMode
	}
	d.gate.RLock()
	deleted, err := s.delMem(th, key)
	var tk wal.Ticket
	var werr error
	if err == nil && deleted {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Del: true, Key: key}})
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if serr := d.settle(tk, werr); serr != nil {
		return false, serr
	}
	return deleted, nil
}

// casDurable logs the swap only when it succeeded.
func (s *store) casDurable(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (bool, error) {
	d := s.dur
	if d.readOnly.Load() {
		return false, ErrReadOnlyMode
	}
	d.gate.RLock()
	swapped, err := s.casMem(th, key, expectPresent, expect, val)
	var tk wal.Ticket
	var werr error
	if err == nil && swapped {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Key: key, Val: val}})
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if serr := d.settle(tk, werr); serr != nil {
		return false, serr
	}
	return swapped, nil
}

// effectiveOps folds a committed script's performed writes into WAL
// ops, in script order so replay reproduces last-write-wins within the
// record: every SET, every DEL that found its key, every CAS that
// swapped. GETs and missed DELs/CASes contribute nothing.
func effectiveOps(subs []multiSub, results []subResult) []wal.Op {
	var ops []wal.Op
	for i := range subs {
		sub := &subs[i]
		switch sub.op {
		case OpSet:
			ops = append(ops, wal.Op{Key: sub.key, Val: sub.val})
		case OpDel:
			if results[i].present {
				ops = append(ops, wal.Op{Del: true, Key: sub.key})
			}
		case OpCas:
			if results[i].present {
				ops = append(ops, wal.Op{Key: sub.key, Val: sub.val})
			}
		}
	}
	return ops
}

// multiDurable logs a committed script as ONE record, so a MULTI is
// atomic across a crash exactly as it is atomic in memory: recovery
// replays all of its effective writes or none (a torn record is
// discarded whole).
func (s *store) multiDurable(th *tbtm.Thread, subs []multiSub, results *[]subResult) (bool, error) {
	d := s.dur
	if d.readOnly.Load() {
		return false, ErrReadOnlyMode
	}
	d.gate.RLock()
	committed, err := s.multiMem(th, subs, results)
	var tk wal.Ticket
	var werr error
	if err == nil && committed {
		if ops := effectiveOps(subs, *results); len(ops) > 0 {
			tk, werr = d.log.Append(th.LastCommitTick(), ops)
		}
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if !committed {
		return false, nil
	}
	if serr := d.settle(tk, werr); serr != nil {
		return false, serr
	}
	return true, nil
}

// execBatchDurable logs a committed batch window as one record of its
// effective writes. The batch committed as one engine transaction, so
// one record preserves its atomicity across a crash too.
func (s *store) execBatchDurable(th *tbtm.Thread, subs []multiSub, results *[]subResult) error {
	d := s.dur
	if d.readOnly.Load() {
		return ErrReadOnlyMode
	}
	d.gate.RLock()
	err := s.execBatchMem(th, subs, results)
	var tk wal.Ticket
	var werr error
	if err == nil {
		if ops := effectiveOps(subs, *results); len(ops) > 0 {
			tk, werr = d.log.Append(th.LastCommitTick(), ops)
		}
	}
	d.gate.RUnlock()
	if err != nil {
		return err
	}
	return d.settle(tk, werr)
}

// btakeDurable is btake restructured for the checkpoint gate: the plain
// version parks INSIDE its update transaction, and a parked transaction
// holding the gate's read side would deadlock the checkpointer. Here
// the park is a read-only existence wait OUTSIDE the gate, and only a
// non-blocking take attempt runs under it; a key that vanishes between
// wake and take (another taker won) loops back to parking.
func (s *store) btakeDurable(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) ([]byte, error) {
	d := s.dur
	for {
		if d.readOnly.Load() {
			return nil, ErrReadOnlyMode
		}
		// Park until the key exists (or shutdown / client hang-up).
		err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
			_, ok, e := s.getTx(tx, key)
			if e != nil {
				return e
			}
			if ok {
				return nil
			}
			if e := s.checkLive(tx, cancel); e != nil {
				return e
			}
			return tbtm.Retry(tx)
		})
		if err != nil {
			return nil, err
		}
		var val []byte
		var took bool
		d.gate.RLock()
		err = th.AtomicSite(siteBTake, func(tx tbtm.Tx) error {
			val, took = nil, false
			v, ok, e := s.getTx(tx, key)
			if e != nil {
				return e
			}
			if !ok {
				return nil // raced away; commit empty-handed and re-park
			}
			if _, e := s.delTx(tx, key); e != nil {
				return e
			}
			val, took = v, true
			return nil
		})
		var tk wal.Ticket
		var werr error
		if err == nil && took {
			tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Del: true, Key: key}})
		}
		d.gate.RUnlock()
		if err != nil {
			return nil, err
		}
		if !took {
			continue
		}
		if serr := d.settle(tk, werr); serr != nil {
			// The take committed in memory but is not durable; the client
			// must not treat the value as consumed.
			return nil, serr
		}
		return val, nil
	}
}

// enableDurability opens (and recovers) the data directory, seeds the
// store from the recovered image, and starts the checkpointer. Called
// from New before the server accepts connections.
func (s *Server) enableDurability(cfg Config) error {
	mode := wal.ModeStrict
	if cfg.Durability != "" {
		var err error
		mode, err = wal.ParseMode(cfg.Durability)
		if err != nil {
			return err
		}
	}
	d := &durability{}
	log, rec, err := wal.Open(wal.Options{
		Dir:           cfg.DataDir,
		FS:            cfg.WALFS,
		Mode:          mode,
		FsyncEvery:    cfg.FsyncEvery,
		FsyncInterval: cfg.FsyncInterval,
		SegmentBytes:  cfg.SegmentBytes,
		OnFailure:     func(error) { d.readOnly.Store(true) },
	})
	if err != nil {
		return err
	}
	// Seed the store from the recovered image through the raw in-memory
	// paths: recovery must not re-append what the log already holds.
	// Chunked so no single seeding transaction grows unboundedly.
	keys := make([]string, 0, len(rec.Keys))
	for k := range rec.Keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const chunk = 512
	for len(keys) > 0 {
		part := keys
		if len(part) > chunk {
			part = keys[:chunk]
		}
		keys = keys[len(part):]
		err := s.sysTh.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
			for _, k := range part {
				if err := s.store.setTx(tx, k, rec.Keys[k]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Close()
			return err
		}
	}
	d.log = log
	s.store.dur = d
	s.wlog = log
	s.recovered = rec
	s.ckptBytes = cfg.CheckpointBytes
	if s.ckptBytes <= 0 {
		s.ckptBytes = 64 << 20
	}
	s.ckptTh = s.tm.NewThread()
	s.ckptStop = make(chan struct{})
	s.ckptDone = make(chan struct{})
	go s.checkpointLoop()
	return nil
}

// Recovery describes what the server reconstructed from its data
// directory at startup (nil without one).
func (s *Server) Recovery() *wal.Recovered { return s.recovered }

// checkpointLoop polls the WAL growth counter and writes a checkpoint
// whenever CheckpointBytes of records accumulated since the last one.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			if s.wlog.NeedCheckpoint(s.ckptBytes) {
				// Errors are advisory: a transient snapshot failure retries
				// on the next tick, and a wedged log refuses checkpoints
				// itself (the server is read-only by then anyway).
				_ = s.checkpoint()
			}
		}
	}
}

// checkpoint writes one consistent snapshot and lets the WAL prune
// everything it supersedes. See the package comment for why reading
// LastAssignedSeq under the gate's write lock and THEN snapshotting
// yields a bound S such that checkpoint ∪ replay(seq > S) is exact.
func (s *Server) checkpoint() error {
	d := s.store.dur
	d.gate.Lock()
	upTo := s.wlog.LastAssignedSeq()
	d.gate.Unlock()
	if upTo == 0 {
		return nil
	}
	pairs, err := s.store.rangeScan(s.ckptTh, "", "", 0)
	if err != nil {
		return err
	}
	return s.wlog.Checkpoint(upTo, len(pairs), func(emit func(string, []byte) error) error {
		for _, p := range pairs {
			if err := emit(p.key, p.val); err != nil {
				return err
			}
		}
		return nil
	})
}
