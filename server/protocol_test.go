package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	payloads := [][]byte{nil, {0x01}, bytes.Repeat([]byte("xy"), 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, &hdr, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, s, err := readFrame(&buf, &hdr, scratch, DefaultMaxFrame)
		scratch = s
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	if err := writeFrame(&buf, &hdr, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, &hdr, nil, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestParseRequestRoundTrip(t *testing.T) {
	var req request

	// SET with fields.
	p := appendString([]byte{byte(OpSet)}, "key")
	p = appendBytes(p, []byte("value"))
	if err := parseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if req.op != OpSet || string(req.key) != "key" || string(req.val) != "value" {
		t.Fatalf("parsed %+v", req)
	}

	// CAS with flags.
	p = appendString([]byte{byte(OpCas)}, "k")
	p = append(p, 1)
	p = appendBytes(p, []byte("old"))
	p = appendBytes(p, []byte("new"))
	if err := parseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if !req.expectPresent || string(req.expect) != "old" || string(req.val) != "new" {
		t.Fatalf("parsed %+v", req)
	}

	// RANGE.
	p = appendString([]byte{byte(OpRange)}, "a")
	p = appendString(p, "z")
	p = binary.AppendUvarint(p, 7)
	if err := parseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if string(req.from) != "a" || string(req.to) != "z" || req.limit != 7 {
		t.Fatalf("parsed %+v", req)
	}

	// MULTI with a mix, reusing the same request struct.
	p = []byte{byte(OpMulti)}
	p = binary.AppendUvarint(p, 2)
	p = appendString(append(p, byte(OpGet)), "g")
	p = appendString(append(p, byte(OpSet)), "s")
	p = appendBytes(p, []byte("sv"))
	if err := parseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.multi) != 2 || req.multi[0].op != OpGet || string(req.multi[1].val) != "sv" {
		t.Fatalf("parsed multi %+v", req.multi)
	}

	// BTAKE and WAIT.
	p = appendString([]byte{byte(OpBTake)}, "q")
	if err := parseRequest(p, &req); err != nil || string(req.key) != "q" {
		t.Fatalf("btake parse: %v %+v", err, req)
	}
	p = appendString([]byte{byte(OpWait)}, "w")
	p = append(p, 1)
	p = appendBytes(p, []byte("ov"))
	if err := parseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if string(req.key) != "w" || !req.expectPresent || string(req.expect) != "ov" {
		t.Fatalf("wait parse %+v", req)
	}
}

func TestParseRequestTruncated(t *testing.T) {
	var req request
	cases := [][]byte{
		{},                      // empty
		{byte(OpSet)},           // missing key
		{byte(OpSet), 3, 'a'},   // short key
		{byte(OpCas), 1, 'k'},   // missing flag and values
		{byte(OpMulti), 0xFF},   // bad count varint (single 0xFF byte)
		{byte(OpMulti), 5},      // count larger than payload
		{byte(OpRange), 1, 'a'}, // missing to and limit
	}
	for i, p := range cases {
		if err := parseRequest(p, &req); err == nil {
			t.Errorf("case %d (% x): parse accepted a truncated request", i, p)
		}
	}
}
