package server

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tbtm"
	"tbtm/internal/wal"
)

// durableServer spins an in-process durable server on a loopback port
// over the given MemFS and returns it with a connected client.
func durableServer(t *testing.T, fs *wal.MemFS, cfg Config) (*Server, *Client) {
	t.Helper()
	cfg.DataDir = "d"
	if cfg.WALFS == nil {
		cfg.WALFS = fs
	}
	if cfg.Durability == "" {
		cfg.Durability = "strict"
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := DialTimeout(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return srv, cl
}

func TestDurableRecoveryRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	srv, cl := durableServer(t, fs, Config{})
	if rec := srv.Recovery(); rec == nil || len(rec.Keys) != 0 {
		t.Fatalf("fresh recovery: %+v", rec)
	}
	if err := cl.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Del("a"); err != nil {
		t.Fatal(err)
	}
	if swapped, err := cl.Cas("b", []byte("2"), true, []byte("3")); err != nil || !swapped {
		t.Fatalf("cas: swapped=%v err=%v", swapped, err)
	}
	// A CAS that fails must log nothing.
	if swapped, err := cl.Cas("b", []byte("stale"), true, []byte("X")); err != nil || swapped {
		t.Fatalf("stale cas: swapped=%v err=%v", swapped, err)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2, cl2 := durableServer(t, fs, Config{})
	defer srv2.Close()
	defer cl2.Close()
	rec := srv2.Recovery()
	if rec == nil || rec.TornTail {
		t.Fatalf("recovery: %+v", rec)
	}
	if _, ok, _ := cl2.Get("a"); ok {
		t.Fatal("deleted key resurfaced after recovery")
	}
	v, ok, err := cl2.Get("b")
	if err != nil || !ok || string(v) != "3" {
		t.Fatalf("b = %q ok=%v err=%v, want 3", v, ok, err)
	}
}

func TestDurableVectorClockRefused(t *testing.T) {
	for _, c := range []tbtm.Consistency{tbtm.CausallySerializable, tbtm.Serializable} {
		_, err := New(Config{Consistency: c, DataDir: "d", WALFS: wal.NewMemFS()})
		if err == nil {
			t.Fatalf("%v: durable server built without a scalar clock", c)
		}
	}
}

func TestDurableMultiOneRecordAndAtomicity(t *testing.T) {
	fs := wal.NewMemFS()
	srv, cl := durableServer(t, fs, Config{})
	defer srv.Close()
	defer cl.Close()
	before := srv.dur.Log().Stats().Records
	// A committed script with several writes is ONE record.
	_, committed, err := cl.MultiExec([]MultiOp{
		MSet("x", []byte("1")),
		MSet("y", []byte("2")),
		MDel("missing"), // ineffective: not logged
		MGet("x"),
	})
	if err != nil || !committed {
		t.Fatalf("multi: committed=%v err=%v", committed, err)
	}
	if got := srv.dur.Log().Stats().Records - before; got != 1 {
		t.Fatalf("committed multi appended %d records, want 1", got)
	}
	// An aborted script (failed CAS) logs nothing.
	before = srv.dur.Log().Stats().Records
	_, committed, err = cl.MultiExec([]MultiOp{
		MSet("z", []byte("never")),
		MCas("x", []byte("stale"), true, []byte("no")),
	})
	if err != nil || committed {
		t.Fatalf("aborted multi: committed=%v err=%v", committed, err)
	}
	if got := srv.dur.Log().Stats().Records - before; got != 0 {
		t.Fatalf("aborted multi appended %d records, want 0", got)
	}
	// A read-only script appends nothing either.
	before = srv.dur.Log().Stats().Records
	if _, _, err := cl.MultiExec([]MultiOp{MGet("x"), MGet("y")}); err != nil {
		t.Fatal(err)
	}
	if got := srv.dur.Log().Stats().Records - before; got != 0 {
		t.Fatalf("read-only multi appended %d records, want 0", got)
	}
}

func TestDurableBTakeLogsConsumption(t *testing.T) {
	fs := wal.NewMemFS()
	srv, cl := durableServer(t, fs, Config{})
	if err := cl.Set("token", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Parked taker woken by a later SET: the take must be durable too.
	done := make(chan error, 1)
	go func() {
		v, err := cl.BTake("token")
		if err == nil && string(v) != "v" {
			err = fmt.Errorf("btake returned %q", v)
		}
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("btake: %v", err)
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, cl2 := durableServer(t, fs, Config{})
	defer srv2.Close()
	defer cl2.Close()
	if _, ok, _ := cl2.Get("token"); ok {
		t.Fatal("taken token resurfaced after recovery")
	}
}

func TestDurableCheckpointRecoversAndPrunes(t *testing.T) {
	fs := wal.NewMemFS()
	srv, cl := durableServer(t, fs, Config{SegmentBytes: 1024, CheckpointBytes: 2048})
	val := []byte("0123456789abcdef")
	for i := 0; i < 200; i++ {
		if err := cl.Set(fmt.Sprintf("k%03d", i%50), append(val, byte('0'+i%10))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.dur.Log().Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpointer never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// More writes after the checkpoint so recovery replays both layers.
	for i := 0; i < 50; i++ {
		if err := cl.Set(fmt.Sprintf("k%03d", i), []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, cl2 := durableServer(t, fs, Config{})
	defer srv2.Close()
	defer cl2.Close()
	rec := srv2.Recovery()
	if rec.CheckpointSeq == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", rec)
	}
	if len(rec.Keys) != 50 {
		t.Fatalf("recovered %d keys, want 50", len(rec.Keys))
	}
	for i := 0; i < 50; i++ {
		v, ok, err := cl2.Get(fmt.Sprintf("k%03d", i))
		if err != nil || !ok {
			t.Fatalf("k%03d missing after recovery (err=%v)", i, err)
		}
		if string(v) != "post" {
			t.Fatalf("k%03d = %q, want post", i, v)
		}
	}
}

func TestDurableReadOnlyDegradation(t *testing.T) {
	fs := wal.NewMemFS()
	boom := errors.New("simulated ENOSPC")
	inj := &wal.ScriptInjector{FailSyncAt: 4, SyncErr: boom}
	srv, cl := durableServer(t, fs, Config{WALFS: &wal.InjectFS{FS: fs, Inj: inj}})
	defer srv.Close()
	defer cl.Close()

	// Writes succeed until the injected fsync failure wedges the log…
	var gotRO bool
	for i := 0; i < 20; i++ {
		err := cl.Set("k", []byte("v"))
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrReadOnlyMode) {
			t.Fatalf("set error = %v, want ErrReadOnlyMode", err)
		}
		gotRO = true
		break
	}
	if !gotRO {
		t.Fatal("log never wedged despite injected fsync failure")
	}
	// …after which every update answers StatusReadOnly on the wire:
	if err := cl.Set("k2", []byte("v")); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("set after wedge = %v, want ErrReadOnlyMode", err)
	}
	if _, err := cl.Del("k"); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("del after wedge = %v, want ErrReadOnlyMode", err)
	}
	if _, _, err := cl.MultiExec([]MultiOp{MSet("a", []byte("b"))}); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("multi after wedge = %v, want ErrReadOnlyMode", err)
	}
	if _, err := cl.BTake("k"); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("btake after wedge = %v, want ErrReadOnlyMode", err)
	}
	// Reads keep being served from memory, including read-only scripts.
	if _, _, err := cl.Get("k"); err != nil {
		t.Fatalf("read in read-only mode: %v", err)
	}
	if _, err := cl.Range("", "", 0); err != nil {
		t.Fatalf("range in read-only mode: %v", err)
	}
	if _, _, err := cl.MultiExec([]MultiOp{MGet("k")}); err != nil {
		t.Fatalf("read-only multi in read-only mode: %v", err)
	}
	// And STATS reports the gauge.
	reply, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reply.WAL == nil || !reply.WAL.ReadOnly || !reply.WAL.Failed {
		t.Fatalf("stats WAL section: %+v", reply.WAL)
	}
}

func TestDurableModesRoundTrip(t *testing.T) {
	for _, mode := range []string{"none", "relaxed", "strict"} {
		t.Run(mode, func(t *testing.T) {
			fs := wal.NewMemFS()
			srv, cl := durableServer(t, fs, Config{Durability: mode})
			for i := 0; i < 30; i++ {
				if err := cl.Set(fmt.Sprintf("k%d", i%5), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			cl.Close()
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			// A clean close makes every mode fully durable.
			srv2, cl2 := durableServer(t, fs, Config{Durability: mode})
			defer srv2.Close()
			defer cl2.Close()
			for i := 0; i < 5; i++ {
				v, ok, err := cl2.Get(fmt.Sprintf("k%d", i))
				want := fmt.Sprintf("v%d", 25+i)
				if err != nil || !ok || string(v) != want {
					t.Fatalf("k%d = %q ok=%v err=%v, want %q", i, v, ok, err, want)
				}
			}
		})
	}
}
