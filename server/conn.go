// The pipelined connection layer: greedy decode, server-side batching,
// and a coalescing response writer.
//
// PR5 served one request at a time per connection: read one frame,
// lease a Thread, run one transaction, write one response, flush — four
// syscalls and one lease cycle per wire op, which is why BENCH_PR5
// measured a 35x gap between wire throughput and in-process commits.
// The pconn closes that gap structurally:
//
//   - requests are decoded GREEDILY from each readable burst: every
//     complete frame in the buffer is parsed before any response is
//     flushed, so k pipelined requests cost one read;
//
//   - consecutive non-blocking single-key ops (GET/SET/DEL/CAS) are
//     accumulated and executed under ONE fast-tranche lease as ONE
//     transaction (store.execBatch) — reads see the batch's earlier
//     writes, each op gets its own status, a failed CAS is a per-op
//     result rather than an abort, and a batch that fails with a
//     genuine error re-runs its ops individually so the first error
//     does not poison later independent ops;
//
//   - responses are appended to a coalescing write buffer and flushed
//     once per burst, so k responses cost one write.
//
// Non-blocking responses are written in request order. Blocking ops
// (BTAKE/WAIT) leave the fast path entirely: they are dispatched to a
// dedicated goroutine holding a blocking-tranche lease, later requests
// on the connection keep flowing, and the blocking response is written
// whenever the op completes — matched by its echoed sequence ID, the
// one place the protocol is out of order by design. The PR5 Peek
// monitor goroutine is gone: the reader is always reading under
// pipelining, so a hang-up surfaces as a read error and the teardown
// path commits the connection's cancel flag to wake anything parked.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
)

// keyCacheSlots sizes the per-connection direct-mapped key-string
// cache (a power of two). PR5's single entry was enough for one-op-at-
// a-time clients; a pipelined burst touches several keys, so the cache
// holds a small working set and converts wire bytes to the store's
// string key once per key, not once per request.
const keyCacheSlots = 8

type keyCacheEntry struct {
	raw []byte // private copy of the key bytes (the frame buffer is reused)
	str string
}

// keySlot hashes key bytes to a cache slot (FNV-1a, truncated).
//
//tbtm:noalloc
func keySlot(b []byte) int {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return int(h & (keyCacheSlots - 1))
}

// pconn is the per-connection state: the read accumulation buffer the
// decoder aliases into, the pending batch, the coalescing write buffer,
// and every scratch buffer the request cycle needs — allocated once per
// connection so the warm pipelined path allocates nothing.
type pconn struct {
	s *Server
	c net.Conn
	w io.Writer // response sink; cn.c except in decode-level tests

	fd   int         // epoll-path file descriptor (-1 on the fallback driver)
	dead atomic.Bool // set by Close so the owning loop tears down without touching the socket

	in    []byte  // read accumulation buffer; frames are decoded in place
	inoff int     // consumed prefix of in
	req   request // decoded request (aliases in)
	resp  []byte  // response body scratch (reader-owned)

	// Coalescing response writer. Frames are appended under wmu —
	// whole frames only, so blocking completions interleave at frame
	// granularity — and written with one Write per flush.
	wmu  sync.Mutex
	wbuf []byte

	// Pending batch: decoded non-blocking single-key ops awaiting one
	// shared lease/commit window, with their sequence IDs.
	batch     []multiSub
	batchSeqs []uint64
	results   []subResult
	msubs     []multiSub // solo MULTI scratch

	keys [keyCacheSlots]keyCacheEntry

	// Blocking-op state: cancel is the connection's transactional
	// hang-up flag (committing it wakes every parked BTAKE/WAIT of this
	// connection), blockingOut counts dispatched-but-unanswered
	// blocking ops.
	cancel      *tbtm.Var[bool]
	blockingOut atomic.Int64

	// Prebound closures for the lease-holding paths, built once per
	// connection so serving allocates neither a closure nor captured
	// variables per request. oneIdx selects the batch entry oneFn runs.
	oneIdx    int
	oneRes    subResult
	oneFn     func(*tbtm.Thread) error
	batchFn   func(*tbtm.Thread) error
	batchROFn func(*tbtm.Thread) error

	down sync.Once
}

func newPconn(s *Server, c net.Conn) *pconn {
	cn := &pconn{s: s, c: c, w: c, fd: -1}
	cn.oneFn = func(th *tbtm.Thread) error {
		res, err := s.store.execOne(th, &cn.batch[cn.oneIdx])
		if err != nil {
			return err
		}
		cn.oneRes = res
		return nil
	}
	cn.batchFn = func(th *tbtm.Thread) error {
		return s.store.execBatch(th, cn.batch, &cn.results)
	}
	cn.batchROFn = func(th *tbtm.Thread) error {
		return s.store.execBatchRO(th, cn.batch, &cn.results)
	}
	return cn
}

// keyString converts a wire key to the store's string key through the
// connection's direct-mapped cache.
//
//tbtm:allocok
func (cn *pconn) keyString(b []byte) string {
	e := &cn.keys[keySlot(b)]
	if e.str != "" && bytes.Equal(b, e.raw) {
		return e.str
	}
	e.raw = append(e.raw[:0], b...)
	e.str = string(b)
	return e.str
}

// grow ensures at least n spare bytes in the read buffer.
//
//tbtm:allocok
func (cn *pconn) grow(n int) {
	if cap(cn.in)-len(cn.in) >= n {
		return
	}
	// Compact first: consumed prefix is dead weight.
	cn.compact()
	if cap(cn.in)-len(cn.in) >= n {
		return
	}
	newCap := 2 * cap(cn.in)
	if newCap < 4096 {
		newCap = 4096
	}
	for newCap-len(cn.in) < n {
		newCap *= 2
	}
	in := make([]byte, len(cn.in), newCap)
	copy(in, cn.in)
	cn.in = in
}

// compact drops the consumed prefix, moving any partial frame to the
// front of the buffer.
//
//tbtm:noalloc
func (cn *pconn) compact() {
	if cn.inoff == 0 {
		return
	}
	n := copy(cn.in, cn.in[cn.inoff:])
	cn.in = cn.in[:n]
	cn.inoff = 0
}

// processBurst decodes every complete frame buffered in cn.in,
// executes batches and solo ops, queues their responses, and flushes
// the wire once. A non-nil return tears the connection down. Decoded
// requests alias cn.in, which is stable until compact() at the end —
// batch execution therefore always happens inside the burst.
func (cn *pconn) processBurst() error {
	s := cn.s
	for {
		rest := cn.in[cn.inoff:]
		if len(rest) < 4 {
			break
		}
		n := int(binary.BigEndian.Uint32(rest))
		if n > s.cfg.MaxFrame {
			return ErrFrameTooLarge
		}
		if len(rest) < 4+n {
			// Partial frame: make room for the remainder, wait for more.
			cn.grow(4 + n - len(rest))
			break
		}
		payload := rest[4 : 4+n]
		cn.inoff += 4 + n

		seq, body, err := takeUvarint(payload)
		if err != nil {
			return err // cannot even attribute a response; desynced
		}
		if err := cn.dispatch(seq, body); err != nil {
			return err
		}
	}
	if err := cn.flushBatch(); err != nil {
		return err
	}
	cn.compact()
	return cn.flushWire()
}

// dispatch routes one decoded request. Batchable ops accumulate; every
// other class first flushes the pending batch so non-blocking
// responses stay in request order.
func (cn *pconn) dispatch(seq uint64, body []byte) error {
	s := cn.s
	if err := parseRequest(body, &cn.req); err != nil {
		if ferr := cn.flushBatch(); ferr != nil {
			return ferr
		}
		b := cn.beginResp(seq)
		b = append(b, byte(StatusError))
		b = appendString(b, err.Error())
		cn.queueResp(b)
		return nil
	}
	if s.closed.Load() {
		if ferr := cn.flushBatch(); ferr != nil {
			return ferr
		}
		cn.queueResp(append(cn.beginResp(seq), byte(StatusClosed)))
		return nil
	}
	switch cn.req.op {
	case OpGet, OpSet, OpDel, OpCas:
		cn.appendBatch(seq, &cn.req.subReq)
		if len(cn.batch) >= s.maxBatch {
			return cn.flushBatch()
		}
		return nil
	case OpPing:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		cn.queueResp(append(cn.beginResp(seq), byte(StatusOK)))
		return nil
	case OpBTake, OpWait:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		cn.dispatchBlocking(seq)
		return nil
	case OpRange, OpMulti, OpStats:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		return cn.execSolo(seq)
	default:
		if err := cn.flushBatch(); err != nil {
			return err
		}
		b := cn.beginResp(seq)
		b = append(b, byte(StatusError))
		b = appendString(b, fmt.Sprintf("server: unknown opcode %d", cn.req.op))
		cn.queueResp(b)
		return nil
	}
}

// appendBatch materializes one single-key op into the pending batch:
// string key through the cache, a private copy of the stored value
// (it outlives the frame buffer), expect aliasing the frame buffer
// (only compared inside the attempt, and the batch executes before the
// buffer is compacted).
func (cn *pconn) appendBatch(seq uint64, sub *subReq) {
	m := multiSub{
		op:            sub.op,
		key:           cn.keyString(sub.key),
		expect:        sub.expect,
		expectPresent: sub.expectPresent,
	}
	if sub.op == OpSet || sub.op == OpCas {
		m.val = copyBytes(sub.val)
	}
	cn.batch = append(cn.batch, m)
	cn.batchSeqs = append(cn.batchSeqs, seq)
}

// flushBatch executes the pending batch — one lease and one commit
// window for k >= 2 ops, the plain single-op path for k == 1 — and
// queues the per-op responses in request order.
func (cn *pconn) flushBatch() error {
	n := len(cn.batch)
	if n == 0 {
		return nil
	}
	s := cn.s
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var err error
	if n == 1 {
		cn.oneIdx = 0
		err = s.exec.Do(nil, cn.batch[0].op, false, cn.oneFn)
		if err == nil {
			cn.results = append(cn.results[:0], cn.oneRes)
		}
	} else {
		ro := true
		for i := range cn.batch {
			if cn.batch[i].op != OpGet {
				ro = false
				break
			}
		}
		fn := cn.batchFn
		if ro {
			fn = cn.batchROFn
		}
		var d time.Duration
		d, err = s.exec.DoBatch(nil, n, fn)
		if err == nil {
			// Attribute amortized latency to the constituent opcodes so
			// per-op counters keep reflecting wire traffic.
			per := d / time.Duration(n)
			for i := range cn.batch {
				s.exec.m.ops[cn.batch[i].op].record(per, nil)
			}
		}
	}

	if err != nil {
		cn.rerunSolo(err)
	} else {
		for i := range cn.batch {
			b := cn.beginResp(cn.batchSeqs[i])
			b = appendSubResp(b, cn.batch[i].op, &cn.results[i])
			cn.queueResp(b)
		}
	}
	cn.batch = cn.batch[:0]
	cn.batchSeqs = cn.batchSeqs[:0]
	return nil
}

// rerunSolo is the batch-abort policy: the shared window failed with a
// genuine error (engine error, executor shutdown), so each op re-runs
// in its own transaction and answers its own outcome — the first error
// does not poison later independent ops. Shutdown errors short-circuit:
// every op answers StatusClosed without touching the engine again.
func (cn *pconn) rerunSolo(batchErr error) {
	s := cn.s
	closed := errors.Is(batchErr, ErrServerClosed) || errors.Is(batchErr, ErrExecutorClosed)
	for i := range cn.batch {
		b := cn.beginResp(cn.batchSeqs[i])
		if closed {
			b = append(b, byte(StatusClosed))
			cn.queueResp(b)
			continue
		}
		cn.oneIdx = i
		err := s.exec.Do(nil, cn.batch[i].op, false, cn.oneFn)
		if err != nil {
			b = appendErrStatus(b, err)
		} else {
			b = appendSubResp(b, cn.batch[i].op, &cn.oneRes)
		}
		cn.queueResp(b)
	}
}

// appendSubResp encodes one batch entry's wire response body (after the
// sequence ID): the same formats as the top-level single-key ops.
//
//tbtm:noalloc
func appendSubResp(b []byte, op Op, r *subResult) []byte {
	switch op {
	case OpGet:
		if r.status == StatusNotFound {
			return append(b, byte(StatusNotFound))
		}
		b = append(b, byte(StatusOK))
		return appendBytes(b, r.val)
	case OpSet:
		return append(b, byte(StatusOK))
	case OpDel, OpCas:
		b = append(b, byte(StatusOK))
		return append(b, boolByte(r.present))
	}
	return append(b, byte(StatusError)) // unreachable: batch ops are the four above
}

// appendErrStatus encodes a failed op's response head: shutdown maps to
// StatusClosed, read-only degradation to StatusReadOnly, everything
// else to StatusError with the message.
func appendErrStatus(b []byte, err error) []byte {
	if errors.Is(err, ErrServerClosed) || errors.Is(err, ErrExecutorClosed) || errors.Is(err, errClientGone) {
		return append(b, byte(StatusClosed))
	}
	if errors.Is(err, ErrReadOnlyMode) {
		return append(b, byte(StatusReadOnly))
	}
	b = append(b, byte(StatusError))
	return appendString(b, err.Error())
}

// execSolo runs the non-batchable non-blocking ops (RANGE, MULTI,
// STATS) exactly as PR5 did, with the response queued instead of
// written directly.
func (cn *pconn) execSolo(seq uint64) error {
	s := cn.s
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	req := &cn.req
	b := cn.beginResp(seq)
	switch req.op {
	case OpRange:
		var pairs []kv
		err := s.exec.Do(nil, OpRange, false, func(th *tbtm.Thread) error {
			var e error
			pairs, e = s.store.rangeScan(th, string(req.from), string(req.to), req.limit)
			return e
		})
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(StatusOK))
		b = binary.AppendUvarint(b, uint64(len(pairs)))
		for _, p := range pairs {
			b = appendString(b, p.key)
			b = appendBytes(b, p.val)
		}

	case OpMulti:
		cn.msubs = cn.materialize(req.multi, cn.msubs)
		var committed bool
		err := s.exec.Do(nil, OpMulti, false, func(th *tbtm.Thread) error {
			var e error
			committed, e = s.store.multi(th, cn.msubs, &cn.results)
			return e
		})
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(StatusOK), boolByte(committed))
		b = binary.AppendUvarint(b, uint64(len(cn.results)))
		for i := range cn.results {
			r := &cn.results[i]
			b = append(b, byte(r.status))
			switch req.multi[i].op {
			case OpGet:
				if r.status == StatusOK {
					b = appendBytes(b, r.val)
				}
			case OpSet:
			case OpDel, OpCas:
				b = append(b, boolByte(r.present))
			}
		}

	case OpStats:
		reply := StatsReply{
			Engine:   s.tm.Stats(),
			Metrics:  s.exec.m.snapshot(s.exec.nFast, s.exec.nBlock),
			Conns:    s.conns.Load(),
			UptimeMs: time.Since(s.start).Milliseconds(),
		}
		if d := s.store.dur; d != nil {
			reply.WAL = &WALStatsReply{
				StatsSnapshot: s.wlog.Stats(),
				ReadOnly:      d.readOnly.Load(),
			}
		}
		doc, err := json.Marshal(reply)
		if err != nil {
			b = appendErrStatus(b, err)
			break
		}
		b = append(b, byte(StatusOK))
		b = appendBytes(b, doc)
	}
	cn.queueResp(b)
	return nil
}

// materialize converts parsed MULTI sub-requests into retry-stable
// script entries, keys through the connection's cache, reusing dst.
func (cn *pconn) materialize(subs []subReq, dst []multiSub) []multiSub {
	dst = dst[:0]
	for i := range subs {
		sub := &subs[i]
		m := multiSub{op: sub.op, key: cn.keyString(sub.key), expect: sub.expect, expectPresent: sub.expectPresent}
		if sub.op == OpSet || sub.op == OpCas {
			m.val = copyBytes(sub.val)
		}
		dst = append(dst, m)
	}
	return dst
}

// dispatchBlocking hands a BTAKE/WAIT to a dedicated goroutine holding
// a blocking-tranche lease. Later requests on this connection keep
// flowing; the response is written out of order when the op completes,
// matched by its sequence ID. The goroutine owns private copies of
// every request field it touches (the frame buffer does not survive
// the burst).
func (cn *pconn) dispatchBlocking(seq uint64) {
	s := cn.s
	if cn.cancel == nil {
		cn.cancel = tbtm.NewVar(s.tm, false)
	}
	op := cn.req.op
	key := cn.keyString(cn.req.key)
	expectPresent := cn.req.expectPresent
	var old []byte
	if op == OpWait {
		old = copyBytes(cn.req.expect)
	}
	cancel := cn.cancel
	cn.blockingOut.Add(1)
	s.inflight.Add(1)
	go func() {
		defer cn.blockingOut.Add(-1)
		defer s.inflight.Add(-1)
		b := binary.AppendUvarint(make([]byte, 0, 64), seq)
		if op == OpBTake {
			var val []byte
			err := s.exec.Do(nil, OpBTake, true, func(th *tbtm.Thread) error {
				var e error
				val, e = s.store.btake(th, key, cancel)
				return e
			})
			if err != nil {
				b = appendErrStatus(b, err)
			} else {
				b = append(b, byte(StatusOK))
				b = appendBytes(b, val)
			}
		} else {
			var val []byte
			var present bool
			err := s.exec.Do(nil, OpWait, true, func(th *tbtm.Thread) error {
				var e error
				val, present, e = s.store.wait(th, key, expectPresent, old, cancel)
				return e
			})
			if err != nil {
				b = appendErrStatus(b, err)
			} else {
				b = append(b, byte(StatusOK), boolByte(present))
				if present {
					b = appendBytes(b, val)
				}
			}
		}
		cn.queueResp(b)
		_ = cn.flushWire() // nobody else will flush for us; errors mean the client is gone
	}()
}

// beginResp starts a response body in the reader-owned scratch buffer.
//
//tbtm:noalloc
func (cn *pconn) beginResp(seq uint64) []byte {
	return binary.AppendUvarint(cn.resp[:0], seq)
}

// queueResp frames body into the coalescing write buffer. An oversized
// body (an unbounded RANGE over a big store) is replaced by a
// StatusError frame rather than desynchronising a client whose
// readFrame would reject the length prefix without consuming the body.
//
//tbtm:noalloc
func (cn *pconn) queueResp(body []byte) {
	if len(body) > cn.s.cfg.MaxFrame {
		body = cn.oversizedResp(body)
	}
	cn.wmu.Lock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	cn.wbuf = append(cn.wbuf, hdr[:]...)
	cn.wbuf = append(cn.wbuf, body...)
	cn.wmu.Unlock()
	// Retain a grown reader scratch buffer for reuse; blocking
	// completions pass private buffers, which this keeps too — the
	// reader's next beginResp call resets it either way.
	if cap(body) > cap(cn.resp) {
		cn.resp = body[:0]
	}
}

// oversizedResp rewrites an over-limit body into a StatusError frame.
// Cold by construction: it only runs when a reply already blew the
// frame limit, so the formatting allocation is irrelevant.
//
//tbtm:allocok
func (cn *pconn) oversizedResp(body []byte) []byte {
	seq, _, _ := takeUvarint(body)
	body = binary.AppendUvarint(body[:0], seq)
	body = append(body, byte(StatusError))
	return appendString(body, fmt.Sprintf(
		"server: reply exceeds the %d-byte frame limit; narrow the range or pass a limit and resume from the last key", cn.s.cfg.MaxFrame))
}

// flushWire writes the buffered response frames with one Write.
//
//tbtm:noalloc
func (cn *pconn) flushWire() error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if len(cn.wbuf) == 0 {
		return nil
	}
	_, err := cn.w.Write(cn.wbuf)
	cn.wbuf = cn.wbuf[:0]
	return err
}

// teardown closes the connection exactly once: deregister from the
// server, wake anything this connection parked (the client cannot
// receive the value anyway — for BTAKE the key must NOT be consumed),
// and close the socket. Called only by the connection's owning driver
// (its event loop or its reader goroutine).
func (cn *pconn) teardown() {
	cn.down.Do(func() {
		s := cn.s
		s.mu.Lock()
		delete(s.open, cn.c)
		s.mu.Unlock()
		if cn.cancel != nil && cn.blockingOut.Load() > 0 {
			s.cancelBlocked(cn.cancel)
		}
		cn.c.Close()
		s.conns.Add(-1)
		s.serving.Done()
	})
}

// serveConnFallback is the portable connection driver: one goroutine
// per connection blocked in Read — the Go runtime's netpoller is the
// event loop — with the same greedy decode, batching, and coalesced
// flush as the shared epoll loops. Used when the platform has no epoll
// (or Config.EventLoops < 0), and for non-TCP listeners.
func (s *Server) serveConnFallback(cn *pconn) {
	defer cn.teardown()
	for {
		cn.grow(1)
		n, err := cn.c.Read(cn.in[len(cn.in):cap(cn.in)])
		if n > 0 {
			cn.in = cn.in[:len(cn.in)+n]
			if perr := cn.processBurst(); perr != nil {
				return
			}
		}
		if err != nil {
			return // EOF, conn closed, or a framing error we cannot answer
		}
		if cn.dead.Load() {
			return
		}
	}
}
