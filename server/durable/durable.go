// Package durable is the write-ahead path between the in-memory engine
// and internal/wal: it wraps an *engine.Store with a WAL so that every
// update operation logs its EFFECTIVE write set — one record per
// committed transaction — and replies only after the record is
// acknowledged per the configured mode (none/relaxed/strict; see
// wal.Mode). Reads never touch the WAL. The wrapper implements
// engine.KV, so the transport drives it exactly like the plain store.
//
// The ordering contract between commits and checkpoints is a single
// RWMutex, the checkpoint gate. Every update path holds the READ side
// across [engine commit → WAL sequence assignment]; the checkpointer
// takes the WRITE side for the instant it reads LastAssignedSeq as the
// checkpoint's upper bound S, then releases it and snapshots. That
// interlock proves the recovery invariant:
//
//   - while the gate is held exclusively, no commit sits between "took
//     effect in the engine" and "has a WAL seq", so every commit with
//     seq <= S is already engine-visible and the RANGE snapshot taken
//     AFTER the gate drops observes it;
//   - any commit that lands after the gate drops gets seq > S and is
//     replayed over the checkpoint at recovery;
//   - a commit both visible in the snapshot and replayed (seq > S but
//     committed before the snapshot began) is harmless: replay resolves
//     per key by highest (epoch, commit tick), which the snapshot value
//     already carries.
//
// The same invariant is what makes replica bootstrap exact: a replica
// that loads checkpoint S and then applies shipped records with seq > S
// under the same (epoch, tick) resolution reconstructs the primary
// state — see server/repl.
//
// The WAL ticket is waited on AFTER the gate is released, so the gate
// is held only for the in-memory commit plus an in-memory encode —
// never across an fsync — and a checkpoint can never be delayed by
// group-commit latency. Blocking operations (BTAKE) are restructured so
// they never PARK under the gate either: parking waits for the key's
// existence outside the gate, and only the non-blocking take attempt
// runs under it.
//
// Failure policy: the first WAL I/O error (ENOSPC, EIO, a failed
// fsync) wedges the log permanently and flips the store to read-only.
// Reads keep being served from memory; updates answer StatusReadOnly.
// An update whose engine commit succeeded but whose WAL write failed
// also answers StatusReadOnly: the contract is "acknowledged implies
// durable", not "unacknowledged implies absent" — the in-memory value
// may survive until restart, and recovery serves the last durable
// state.
package durable

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/internal/telemetry"
	"tbtm/internal/wal"
	"tbtm/server/engine"
	"tbtm/server/wire"
)

// gateStart stamps the start of a checkpoint-gate acquisition on th's
// attached flight-recorder ring (0 when unattached or disarmed — the
// telemetry calls are nil-safe no-ops for internal threads like the
// checkpointer and replica applier).
func gateStart(th *tbtm.Thread) int64 {
	r, _, _ := th.Trace()
	return r.Now()
}

// gateAcquired records the EvWALGate span: how long the op waited for
// the gate's read side (nonzero while a checkpoint wedges writers).
func gateAcquired(th *tbtm.Thread, t0 int64) {
	r, conn, seq := th.Trace()
	r.Span(telemetry.EvWALGate, 0, conn, seq, 0, t0)
}

// Config selects the WAL's directory and acknowledgement behaviour.
type Config struct {
	// Dir is the data directory (required).
	Dir string
	// FS overrides the filesystem (tests); nil means the real one.
	FS wal.FS
	// Mode is the durability mode ("none", "relaxed", "strict"); empty
	// means strict.
	Mode string
	// FsyncEvery / FsyncInterval / SegmentBytes tune the WAL (zero means
	// the wal package defaults).
	FsyncEvery    int
	FsyncInterval time.Duration
	SegmentBytes  int64
}

// Store wraps an in-memory engine.Store with write-ahead logging. It
// implements engine.KV.
type Store struct {
	base *engine.Store
	log  *wal.Log
	// gate is the checkpoint gate described in the package comment.
	gate sync.RWMutex
	// readOnly flips (once, permanently) when the WAL wedges; checked
	// first on every update path and exported via STATS.
	readOnly atomic.Bool
}

// Open opens (and recovers) the data directory, seeds base from the
// recovered image, and returns the durable wrapper. seedTh runs the
// seeding transactions; it must not race other users of base — callers
// open durability before serving.
func Open(base *engine.Store, seedTh *tbtm.Thread, cfg Config) (*Store, *wal.Recovered, error) {
	mode := wal.ModeStrict
	if cfg.Mode != "" {
		var err error
		mode, err = wal.ParseMode(cfg.Mode)
		if err != nil {
			return nil, nil, err
		}
	}
	d := &Store{base: base}
	log, rec, err := wal.Open(wal.Options{
		Dir:           cfg.Dir,
		FS:            cfg.FS,
		Mode:          mode,
		FsyncEvery:    cfg.FsyncEvery,
		FsyncInterval: cfg.FsyncInterval,
		SegmentBytes:  cfg.SegmentBytes,
		OnFailure:     func(error) { d.readOnly.Store(true) },
	})
	if err != nil {
		return nil, nil, err
	}
	// Seed the store from the recovered image through the raw in-memory
	// paths: recovery must not re-append what the log already holds.
	// Chunked so no single seeding transaction grows unboundedly.
	keys := make([]string, 0, len(rec.Keys))
	for k := range rec.Keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const chunk = 512
	for len(keys) > 0 {
		part := keys
		if len(part) > chunk {
			part = keys[:chunk]
		}
		keys = keys[len(part):]
		err := seedTh.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
			for _, k := range part {
				if err := base.SetTx(tx, k, rec.Keys[k]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Close()
			return nil, nil, err
		}
	}
	d.log = log
	return d, rec, nil
}

// Log exposes the underlying WAL (stats, live-tail followers).
func (d *Store) Log() *wal.Log { return d.log }

// ReadOnly reports whether the store degraded to read-only.
func (d *Store) ReadOnly() bool { return d.readOnly.Load() }

// Close shuts the WAL down (flushing and syncing buffered records).
func (d *Store) Close() error { return d.log.Close() }

// settle waits out a WAL ticket per the log's mode and maps WAL
// failures into the wire error space. The zero Ticket (nothing was
// appended) settles immediately.
func (d *Store) settle(tk wal.Ticket, werr error) error {
	if werr == nil {
		werr = tk.Wait()
	}
	if werr == nil {
		return nil
	}
	if errors.Is(werr, wal.ErrClosed) {
		return engine.ErrServerClosed
	}
	return engine.ErrReadOnly
}

// settleTraced is settle bracketed by an EvFsync span: the time the op
// spent waiting on its group-commit ticket (write ack for relaxed,
// fsync for strict).
func (d *Store) settleTraced(th *tbtm.Thread, tk wal.Ticket, werr error) error {
	r, conn, seq := th.Trace()
	t0 := r.Now()
	err := d.settle(tk, werr)
	r.Span(telemetry.EvFsync, 0, conn, seq, 0, t0)
	return err
}

// Get reads from memory; reads never touch the WAL.
func (d *Store) Get(th *tbtm.Thread, key string) ([]byte, bool, error) {
	return d.base.Get(th, key)
}

// RangeScan reads from memory.
func (d *Store) RangeScan(th *tbtm.Thread, from, to string, limit int) ([]engine.Pair, error) {
	return d.base.RangeScan(th, from, to, limit)
}

// Wait parks on memory state; it writes nothing.
func (d *Store) Wait(th *tbtm.Thread, key string, oldPresent bool, old []byte, cancel *tbtm.Var[bool]) ([]byte, bool, error) {
	return d.base.Wait(th, key, oldPresent, old, cancel)
}

// MarkClosed commits the shutdown flag (in memory only).
func (d *Store) MarkClosed(th *tbtm.Thread) error {
	return d.base.MarkClosed(th)
}

// Set commits and appends under the gate, waits outside it.
func (d *Store) Set(th *tbtm.Thread, key string, val []byte) error {
	if d.readOnly.Load() {
		return engine.ErrReadOnly
	}
	g0 := gateStart(th)
	d.gate.RLock()
	gateAcquired(th, g0)
	err := d.base.Set(th, key, val)
	var tk wal.Ticket
	var werr error
	if err == nil {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Key: key, Val: val}})
	}
	d.gate.RUnlock()
	if err != nil {
		return err
	}
	return d.settleTraced(th, tk, werr)
}

// Del logs the delete only when it took effect (deleting an absent key
// commits nothing and writes nothing).
func (d *Store) Del(th *tbtm.Thread, key string) (bool, error) {
	if d.readOnly.Load() {
		return false, engine.ErrReadOnly
	}
	g0 := gateStart(th)
	d.gate.RLock()
	gateAcquired(th, g0)
	deleted, err := d.base.Del(th, key)
	var tk wal.Ticket
	var werr error
	if err == nil && deleted {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Del: true, Key: key}})
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if serr := d.settleTraced(th, tk, werr); serr != nil {
		return false, serr
	}
	return deleted, nil
}

// Cas logs the swap only when it succeeded.
func (d *Store) Cas(th *tbtm.Thread, key string, expectPresent bool, expect, val []byte) (bool, error) {
	if d.readOnly.Load() {
		return false, engine.ErrReadOnly
	}
	g0 := gateStart(th)
	d.gate.RLock()
	gateAcquired(th, g0)
	swapped, err := d.base.Cas(th, key, expectPresent, expect, val)
	var tk wal.Ticket
	var werr error
	if err == nil && swapped {
		tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Key: key, Val: val}})
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if serr := d.settleTraced(th, tk, werr); serr != nil {
		return false, serr
	}
	return swapped, nil
}

// effectiveOps folds a committed script's performed writes into WAL
// ops, in script order so replay reproduces last-write-wins within the
// record: every SET, every DEL that found its key, every CAS that
// swapped. GETs and missed DELs/CASes contribute nothing.
func effectiveOps(subs []engine.MultiSub, results []engine.SubResult) []wal.Op {
	var ops []wal.Op
	for i := range subs {
		sub := &subs[i]
		switch sub.Op {
		case wire.OpSet:
			ops = append(ops, wal.Op{Key: sub.Key, Val: sub.Val})
		case wire.OpDel:
			if results[i].Present {
				ops = append(ops, wal.Op{Del: true, Key: sub.Key})
			}
		case wire.OpCas:
			if results[i].Present {
				ops = append(ops, wal.Op{Key: sub.Key, Val: sub.Val})
			}
		}
	}
	return ops
}

// Multi logs a committed script as ONE record, so a MULTI is atomic
// across a crash exactly as it is atomic in memory: recovery replays
// all of its effective writes or none (a torn record is discarded
// whole).
func (d *Store) Multi(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) (bool, error) {
	if engine.ReadOnlySubs(subs) {
		return d.base.Multi(th, subs, results)
	}
	if d.readOnly.Load() {
		return false, engine.ErrReadOnly
	}
	g0 := gateStart(th)
	d.gate.RLock()
	gateAcquired(th, g0)
	committed, err := d.base.Multi(th, subs, results)
	var tk wal.Ticket
	var werr error
	if err == nil && committed {
		if ops := effectiveOps(subs, *results); len(ops) > 0 {
			tk, werr = d.log.Append(th.LastCommitTick(), ops)
		}
	}
	d.gate.RUnlock()
	if err != nil {
		return false, err
	}
	if !committed {
		return false, nil
	}
	if serr := d.settleTraced(th, tk, werr); serr != nil {
		return false, serr
	}
	return true, nil
}

// ExecBatch logs a committed batch window as one record of its
// effective writes. The batch committed as one engine transaction, so
// one record preserves its atomicity across a crash too.
func (d *Store) ExecBatch(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) error {
	if d.readOnly.Load() {
		return engine.ErrReadOnly
	}
	g0 := gateStart(th)
	d.gate.RLock()
	gateAcquired(th, g0)
	err := d.base.ExecBatch(th, subs, results)
	var tk wal.Ticket
	var werr error
	if err == nil {
		if ops := effectiveOps(subs, *results); len(ops) > 0 {
			tk, werr = d.log.Append(th.LastCommitTick(), ops)
		}
	}
	d.gate.RUnlock()
	if err != nil {
		return err
	}
	return d.settleTraced(th, tk, werr)
}

// ExecBatchRO runs an all-read batch straight on memory.
func (d *Store) ExecBatchRO(th *tbtm.Thread, subs []engine.MultiSub, results *[]engine.SubResult) error {
	return d.base.ExecBatchRO(th, subs, results)
}

// ExecOne routes the single-op path through this layer's own methods so
// each op keeps durable semantics.
func (d *Store) ExecOne(th *tbtm.Thread, sub *engine.MultiSub) (engine.SubResult, error) {
	return engine.ExecOneOn(d, th, sub)
}

// BTake is btake restructured for the checkpoint gate: the plain
// version parks INSIDE its update transaction, and a parked transaction
// holding the gate's read side would deadlock the checkpointer. Here
// the park is a read-only existence wait OUTSIDE the gate, and only a
// non-blocking take attempt runs under it; a key that vanishes between
// wake and take (another taker won) loops back to parking.
func (d *Store) BTake(th *tbtm.Thread, key string, cancel *tbtm.Var[bool]) ([]byte, error) {
	for {
		if d.readOnly.Load() {
			return nil, engine.ErrReadOnly
		}
		// Park until the key exists (or shutdown / client hang-up).
		err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
			_, ok, e := d.base.GetTx(tx, key)
			if e != nil {
				return e
			}
			if ok {
				return nil
			}
			if e := d.base.CheckLive(tx, cancel); e != nil {
				return e
			}
			return tbtm.Retry(tx)
		})
		if err != nil {
			return nil, err
		}
		var val []byte
		var took bool
		g0 := gateStart(th)
		d.gate.RLock()
		gateAcquired(th, g0)
		err = th.AtomicSite(engine.SiteBTake, func(tx tbtm.Tx) error {
			val, took = nil, false
			v, ok, e := d.base.GetTx(tx, key)
			if e != nil {
				return e
			}
			if !ok {
				return nil // raced away; commit empty-handed and re-park
			}
			if _, e := d.base.DelTx(tx, key); e != nil {
				return e
			}
			val, took = v, true
			return nil
		})
		var tk wal.Ticket
		var werr error
		if err == nil && took {
			tk, werr = d.log.Append(th.LastCommitTick(), []wal.Op{{Del: true, Key: key}})
		}
		d.gate.RUnlock()
		if err != nil {
			return nil, err
		}
		if !took {
			continue
		}
		if serr := d.settleTraced(th, tk, werr); serr != nil {
			// The take committed in memory but is not durable; the client
			// must not treat the value as consumed.
			return nil, serr
		}
		return val, nil
	}
}

// Checkpoint writes one consistent snapshot on th and lets the WAL
// prune everything it supersedes. See the package comment for why
// reading LastAssignedSeq under the gate's write lock and THEN
// snapshotting yields a bound S such that checkpoint ∪ replay(seq > S)
// is exact.
func (d *Store) Checkpoint(th *tbtm.Thread) error {
	d.gate.Lock()
	upTo := d.log.LastAssignedSeq()
	d.gate.Unlock()
	if upTo == 0 {
		return nil
	}
	pairs, err := d.base.RangeScan(th, "", "", 0)
	if err != nil {
		return err
	}
	return d.log.Checkpoint(upTo, len(pairs), func(emit func(string, []byte) error) error {
		for _, p := range pairs {
			if err := emit(p.Key, p.Val); err != nil {
				return err
			}
		}
		return nil
	})
}

// StartCheckpointer starts a loop that polls the WAL growth counter and
// writes a checkpoint on th whenever thresholdBytes of records
// accumulated since the last one. The returned stop function blocks
// until the loop exits; call it before Close.
func (d *Store) StartCheckpointer(th *tbtm.Thread, thresholdBytes int64) (stop func()) {
	if thresholdBytes <= 0 {
		thresholdBytes = 64 << 20
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				if d.log.NeedCheckpoint(thresholdBytes) {
					// Errors are advisory: a transient snapshot failure
					// retries on the next tick, and a wedged log refuses
					// checkpoints itself (the store is read-only by then
					// anyway).
					_ = d.Checkpoint(th)
				}
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}
