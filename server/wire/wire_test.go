package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	payloads := [][]byte{nil, {0x01}, bytes.Repeat([]byte("xy"), 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, &hdr, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, s, err := ReadFrame(&buf, &hdr, scratch, DefaultMaxFrame)
		scratch = s
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame = %q, want %q", got, want)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	if err := WriteFrame(&buf, &hdr, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf, &hdr, nil, 10); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestParseRequestRoundTrip(t *testing.T) {
	var req Request

	// SET with fields.
	p := AppendString([]byte{byte(OpSet)}, "key")
	p = AppendBytes(p, []byte("value"))
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpSet || string(req.Key) != "key" || string(req.Val) != "value" {
		t.Fatalf("parsed %+v", req)
	}

	// CAS with flags.
	p = AppendString([]byte{byte(OpCas)}, "k")
	p = append(p, 1)
	p = AppendBytes(p, []byte("old"))
	p = AppendBytes(p, []byte("new"))
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if !req.ExpectPresent || string(req.Expect) != "old" || string(req.Val) != "new" {
		t.Fatalf("parsed %+v", req)
	}

	// RANGE.
	p = AppendString([]byte{byte(OpRange)}, "a")
	p = AppendString(p, "z")
	p = binary.AppendUvarint(p, 7)
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if string(req.From) != "a" || string(req.To) != "z" || req.Limit != 7 {
		t.Fatalf("parsed %+v", req)
	}

	// MULTI with a mix, reusing the same request struct.
	p = []byte{byte(OpMulti)}
	p = binary.AppendUvarint(p, 2)
	p = AppendString(append(p, byte(OpGet)), "g")
	p = AppendString(append(p, byte(OpSet)), "s")
	p = AppendBytes(p, []byte("sv"))
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Multi) != 2 || req.Multi[0].Op != OpGet || string(req.Multi[1].Val) != "sv" {
		t.Fatalf("parsed multi %+v", req.Multi)
	}

	// BTAKE and WAIT.
	p = AppendString([]byte{byte(OpBTake)}, "q")
	if err := ParseRequest(p, &req); err != nil || string(req.Key) != "q" {
		t.Fatalf("btake parse: %v %+v", err, req)
	}
	p = AppendString([]byte{byte(OpWait)}, "w")
	p = append(p, 1)
	p = AppendBytes(p, []byte("ov"))
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if string(req.Key) != "w" || !req.ExpectPresent || string(req.Expect) != "ov" {
		t.Fatalf("wait parse %+v", req)
	}

	// REPLICATE carries the follower's resume position.
	p = binary.AppendUvarint([]byte{byte(OpReplicate)}, 417)
	if err := ParseRequest(p, &req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpReplicate || req.After != 417 {
		t.Fatalf("replicate parse %+v", req)
	}
}

func TestParseRequestTruncated(t *testing.T) {
	var req Request
	cases := [][]byte{
		{},                      // empty
		{byte(OpSet)},           // missing key
		{byte(OpSet), 3, 'a'},   // short key
		{byte(OpCas), 1, 'k'},   // missing flag and values
		{byte(OpMulti), 0xFF},   // bad count varint (single 0xFF byte)
		{byte(OpMulti), 5},      // count larger than payload
		{byte(OpRange), 1, 'a'}, // missing to and limit
		{byte(OpReplicate)},     // missing position
	}
	for i, p := range cases {
		if err := ParseRequest(p, &req); err == nil {
			t.Errorf("case %d (% x): parse accepted a truncated request", i, p)
		}
	}
}
