// Package wire defines the tbtmd protocol: framing, sequence IDs,
// opcodes, status codes, and request/response encode-decode. It is the
// bottom layer of the server stack — pure byte manipulation with no
// engine, store, or I/O-driver dependencies — shared by the server's
// transport, the client, and the replication subsystem.
//
// # Wire protocol
//
// Every request and every response is one frame: a 4-byte big-endian
// payload length followed by the payload. A request payload is a
// client-assigned uvarint sequence ID, an opcode byte, and
// opcode-specific fields; byte strings are encoded as a uvarint length
// followed by the bytes. A response payload echoes the request's
// sequence ID, then a status byte and status/opcode-specific fields.
// One request gets exactly one response — except OpReplicate, which
// subscribes the connection to a response STREAM (see below).
//
// The protocol is pipelined: a client may have any number of requests
// outstanding on one connection. The server decodes requests greedily
// from each readable burst and answers non-blocking operations in
// request order, so a client that never uses blocking opcodes may rely
// on ordering alone. Blocking opcodes (BTAKE, WAIT) may take
// arbitrarily long: the server parks the transaction on its read
// footprint and replies when a remote commit changes the watched keys
// — or with StatusClosed when the server shuts down. Their responses
// are written whenever they complete, possibly AFTER the responses to
// later requests on the same connection; the echoed sequence ID is
// what matches them back.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a protocol opcode.
type Op byte

// Protocol opcodes. OpGet..OpCas are also valid sub-opcodes inside an
// OpMulti script.
const (
	// OpPing answers StatusOK with no payload.
	OpPing Op = iota + 1
	// OpGet reads one key: key. Response: value, or StatusNotFound.
	OpGet
	// OpSet writes one key: key, value. Response: StatusOK.
	OpSet
	// OpDel deletes one key: key. Response: one byte, 1 if the key
	// existed.
	OpDel
	// OpCas compares-and-swaps one key: key, expect-present byte,
	// expected value, new value. The swap succeeds when the key's
	// presence matches expect-present and (if present) its value equals
	// the expected bytes; on success the key is set to the new value.
	// With expect-present = 0 it is create-if-absent. Response: one
	// byte, 1 if swapped.
	OpCas
	// OpRange scans keys in ascending order: from, to, uvarint limit.
	// The scan covers from <= key < to; an empty to means unbounded
	// above; limit 0 means unlimited. Response: uvarint count, then
	// count x (key, value) — one consistent snapshot.
	OpRange
	// OpMulti executes a script as ONE atomic transaction: uvarint
	// count, then count sub-requests (OpGet/OpSet/OpDel/OpCas, encoded
	// exactly like the top-level forms, opcode byte included). A failed
	// OpCas aborts the whole script: nothing commits. Response: one
	// committed byte, uvarint result count, then per-sub-op responses
	// (status byte + payload as for the top-level op); when committed =
	// 0 the results end at the sub-op that failed.
	OpMulti
	// OpBTake blocks until the key exists, then deletes it and returns
	// its value: key. Response: value, or StatusClosed on shutdown.
	OpBTake
	// OpWait blocks until the key's state differs from the given one:
	// key, old-present byte, old value. Response: present byte + value,
	// or StatusClosed on shutdown.
	OpWait
	// OpStats answers a JSON StatsReply (engine + executor counters).
	OpStats
	// OpReplicate subscribes the connection to the primary's WAL:
	// uvarint afterSeq (the last record the follower already applied; 0
	// for none). The response is a STREAM of frames, every one echoing
	// this request's sequence ID with StatusOK and a kind byte (the
	// Repl* constants) — checkpoint bootstrap first when the follower
	// is behind the primary's pruning horizon, then records and
	// heartbeats until either side closes. Terminal conditions answer a
	// normal StatusError/StatusClosed frame.
	OpReplicate
	// OpTrace dumps the server's flight recorder: uvarint max events (0
	// for the server default). Response: a JSON document of the merged,
	// time-ordered phase events (see internal/telemetry).
	OpTrace

	// OpMax bounds the opcode space (for per-opcode metric arrays).
	OpMax
)

// String names the opcode for metrics and errors.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	case OpCas:
		return "cas"
	case OpRange:
		return "range"
	case OpMulti:
		return "multi"
	case OpBTake:
		return "btake"
	case OpWait:
		return "wait"
	case OpStats:
		return "stats"
	case OpReplicate:
		return "replicate"
	case OpTrace:
		return "trace"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Status is the first byte of every response payload.
type Status byte

// Response statuses.
const (
	// StatusOK carries the opcode's success payload.
	StatusOK Status = iota
	// StatusNotFound reports a missing key (OpGet).
	StatusNotFound
	// StatusError carries an error string; the connection stays usable.
	StatusError
	// StatusClosed reports that the server is shutting down; blocked
	// operations answer it when woken by shutdown.
	StatusClosed
	// StatusReadOnly reports an update refused (or an acknowledgement
	// withheld) because this server does not accept writes. A reason
	// byte follows (ReadOnlyWAL, ReadOnlyReplica); reads keep
	// succeeding either way.
	StatusReadOnly
)

// StatusReadOnly reason codes: why this server refuses updates.
const (
	// ReadOnlyWAL: a primary degraded to read-only after a
	// write-ahead-log I/O failure (ENOSPC, EIO, a failed fsync).
	ReadOnlyWAL byte = 0
	// ReadOnlyReplica: the server is a replica; writes must go to its
	// primary.
	ReadOnlyReplica byte = 1
)

// OpReplicate stream frame kinds: the byte after the StatusOK of every
// stream frame. Checkpoint bootstrap is bracketed by ReplCkptBegin /
// ReplCkptEnd; steady state is ReplRecords and ReplHeartbeat.
const (
	// ReplHello opens the stream: uvarint protocol version (1), uvarint
	// primary's last assigned WAL seq.
	ReplHello byte = 1
	// ReplCkptBegin announces a checkpoint bootstrap: uvarint upToSeq
	// (the seq the checkpoint covers), uvarint pair count.
	ReplCkptBegin byte = 2
	// ReplCkptPairs carries a chunk of checkpoint pairs: uvarint n,
	// then n x (key, value).
	ReplCkptPairs byte = 3
	// ReplCkptEnd closes the bootstrap; records follow from upToSeq.
	ReplCkptEnd byte = 4
	// ReplRecords carries raw WAL records: uvarint epoch, uvarint
	// primary's last assigned seq (for lag), then raw record bytes
	// (self-delimiting; decode with the WAL record codec) to the end of
	// the frame.
	ReplRecords byte = 5
	// ReplHeartbeat keeps lag fresh while the primary is idle: uvarint
	// primary's last assigned seq.
	ReplHeartbeat byte = 6
)

// ReplVersion is the replication stream protocol version ReplHello
// announces.
const ReplVersion = 1

// DefaultMaxFrame bounds the payload size both sides will read.
const DefaultMaxFrame = 1 << 20

// Framing and parse errors.
var (
	// ErrFrameTooLarge reports a frame above the size limit.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
	// ErrTruncated reports a payload shorter than its opcode requires.
	ErrTruncated = errors.New("server: truncated request payload")
)

// WriteFrame writes one length-prefixed frame. hdr is scratch space for
// the length prefix (to keep the hot path allocation-free).
func WriteFrame(w io.Writer, hdr *[4]byte, payload []byte) error {
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame into buf (grown as needed) and returns the
// payload slice, which is valid until the next call.
func ReadFrame(r io.Reader, hdr *[4]byte, buf []byte, maxFrame int) ([]byte, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// AppendBytes appends a uvarint-length-prefixed byte string.
//
//tbtm:noalloc
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString is AppendBytes for string payloads without conversion.
//
//tbtm:noalloc
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// TakeBytes consumes one uvarint-length-prefixed byte string from p,
// returning the string (aliasing p) and the rest.
func TakeBytes(p []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < n {
		return nil, p, ErrTruncated
	}
	return p[sz : sz+int(n)], p[sz+int(n):], nil
}

// TakeUvarint consumes one uvarint from p.
//
//tbtm:noalloc
func TakeUvarint(p []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, p, ErrTruncated
	}
	return n, p[sz:], nil
}

// TakeByte consumes one byte from p.
func TakeByte(p []byte) (byte, []byte, error) {
	if len(p) < 1 {
		return 0, p, ErrTruncated
	}
	return p[0], p[1:], nil
}

// BoolByte encodes a bool as the protocol's 0/1 byte.
//
//tbtm:noalloc
func BoolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// SubReq is one decoded operation: either a top-level single-key request
// or one entry of an OpMulti script. All byte slices alias the frame
// buffer and are valid only until the next frame is read.
type SubReq struct {
	Op            Op
	Key           []byte
	Val           []byte
	Expect        []byte
	ExpectPresent bool
}

// Request is a decoded request frame, reused across requests on a
// connection.
type Request struct {
	Op Op

	// Single-key ops and OpWait reuse the SubReq fields.
	SubReq

	// OpRange.
	From, To []byte
	Limit    int

	// OpMulti.
	Multi []SubReq

	// OpReplicate: the last WAL seq the follower already holds.
	After uint64

	// OpTrace: maximum events to dump (0 = server default).
	TraceMax uint64
}

// parseSingle decodes the fields of one single-key operation (after the
// opcode byte) into sub.
func parseSingle(op Op, p []byte, sub *SubReq) ([]byte, error) {
	var err error
	sub.Op = op
	sub.Val, sub.Expect = nil, nil
	sub.ExpectPresent = false
	if sub.Key, p, err = TakeBytes(p); err != nil {
		return p, err
	}
	switch op {
	case OpGet, OpDel, OpBTake:
	case OpSet:
		if sub.Val, p, err = TakeBytes(p); err != nil {
			return p, err
		}
	case OpCas:
		var flag byte
		if flag, p, err = TakeByte(p); err != nil {
			return p, err
		}
		sub.ExpectPresent = flag != 0
		if sub.Expect, p, err = TakeBytes(p); err != nil {
			return p, err
		}
		if sub.Val, p, err = TakeBytes(p); err != nil {
			return p, err
		}
	default:
		return p, fmt.Errorf("server: opcode %s not valid here", op)
	}
	return p, nil
}

// ParseRequest decodes payload into req, reusing req's buffers. The
// decoded request aliases payload.
func ParseRequest(payload []byte, req *Request) error {
	op, p, err := TakeByte(payload)
	if err != nil {
		return err
	}
	req.Op = Op(op)
	switch req.Op {
	case OpPing, OpStats:
		return nil
	case OpGet, OpSet, OpDel, OpCas, OpBTake:
		_, err = parseSingle(req.Op, p, &req.SubReq)
		return err
	case OpWait:
		req.SubReq.Op = OpWait
		req.Val, req.Expect = nil, nil
		if req.Key, p, err = TakeBytes(p); err != nil {
			return err
		}
		var flag byte
		if flag, p, err = TakeByte(p); err != nil {
			return err
		}
		req.ExpectPresent = flag != 0
		req.Expect, _, err = TakeBytes(p)
		return err
	case OpRange:
		if req.From, p, err = TakeBytes(p); err != nil {
			return err
		}
		if req.To, p, err = TakeBytes(p); err != nil {
			return err
		}
		n, _, err := TakeUvarint(p)
		if err != nil {
			return err
		}
		// Clamp: a wire limit beyond any plausible reply is "unlimited
		// up to the frame bound", never a negative int after conversion.
		if n > 1<<31-1 {
			n = 1<<31 - 1
		}
		req.Limit = int(n)
		return nil
	case OpMulti:
		n, p, err := TakeUvarint(p)
		if err != nil {
			return err
		}
		if n > uint64(len(payload)) { // each sub-op takes >= 1 byte
			return ErrTruncated
		}
		req.Multi = req.Multi[:0]
		for i := uint64(0); i < n; i++ {
			var op byte
			if op, p, err = TakeByte(p); err != nil {
				return err
			}
			var sub SubReq
			if p, err = parseSingle(Op(op), p, &sub); err != nil {
				return err
			}
			req.Multi = append(req.Multi, sub)
		}
		return nil
	case OpReplicate:
		req.After, _, err = TakeUvarint(p)
		return err
	case OpTrace:
		req.TraceMax, _, err = TakeUvarint(p)
		return err
	default:
		return fmt.Errorf("server: unknown opcode %d", op)
	}
}
