package tbtm

import (
	"fmt"
	"time"
)

// Consistency selects the STM algorithm and the criterion it guarantees.
type Consistency int

// Consistency levels, from strongest real-time guarantees to the paper's
// pragmatic middle ground.
const (
	// Linearizable selects LSA-STM: multi-version objects, lazy snapshot
	// extension, shared-counter (or simulated real-time) time base.
	Linearizable Consistency = iota + 1
	// SingleVersion selects a lean single-version TBTM without snapshot
	// extension, in the style of TL2 (paper §3). Also linearizable.
	SingleVersion
	// CausallySerializable selects CS-STM on a vector (or plausible REV)
	// time base (paper §4.1).
	CausallySerializable
	// Serializable selects S-STM (paper §4.2).
	Serializable
	// ZLinearizable selects Z-STM (paper §5): LSA for short transactions,
	// zone ordering for long transactions.
	ZLinearizable
	// SnapshotIsolation selects SI-STM, a multi-version snapshot-isolation
	// comparator (paper §4.1 notes causal serializability "provides
	// semantics comparable to snapshot isolation"). Reads observe a fixed
	// start-time snapshot and are never validated; writes follow
	// first-committer-wins. SI admits write skew — see examples/writeskew.
	SnapshotIsolation
)

// String returns the level's name.
func (c Consistency) String() string {
	switch c {
	case Linearizable:
		return "linearizable"
	case SingleVersion:
		return "single-version"
	case CausallySerializable:
		return "causally-serializable"
	case Serializable:
		return "serializable"
	case ZLinearizable:
		return "z-linearizable"
	case SnapshotIsolation:
		return "snapshot-isolation"
	default:
		return "invalid"
	}
}

// Contention names a contention-management policy.
type Contention int

// Contention policies (see internal/cm for semantics).
const (
	// ContentionDefault picks ZoneAware for ZLinearizable and Polite
	// elsewhere.
	ContentionDefault Contention = iota
	// ContentionPolite backs off then aborts the enemy.
	ContentionPolite
	// ContentionAggressive always aborts the enemy.
	ContentionAggressive
	// ContentionSuicide always aborts itself.
	ContentionSuicide
	// ContentionKarma favours the transaction that did more work.
	ContentionKarma
	// ContentionTimestamp favours the older transaction.
	ContentionTimestamp
	// ContentionGreedy resolves instantly in favour of the older
	// transaction, never waiting (Guerraoui et al.'s Greedy manager with
	// provable contention bounds).
	ContentionGreedy
	// ContentionRandomized arbitrates by coin flip, breaking symmetric
	// livelock patterns.
	ContentionRandomized
	// ContentionZoneAware favours long transactions over short ones.
	ContentionZoneAware
)

type config struct {
	consistency  Consistency
	contention   Contention
	versions     int
	versionsSet  bool
	noReadSets   bool
	threads      int
	entries      int
	mapping      ClockMapping
	comb         bool
	zonePatience int
	maxRetries   int

	validationFastPath bool
	sharedCommitTimes  bool

	stripedClock     bool
	stripedSlots     int
	timeBase         TimeBase
	commitStripes    int
	commitStripesSet bool

	realTime     bool
	rtEpsilon    uint64
	rtTick       time.Duration
	rtMaxThreads int

	autoClassify  bool
	classifyOpens float64

	blockingRetry bool

	// commitLog: 0 default-on, >0 explicit ring size, <0 disabled.
	commitLog int
}

func defaultConfig() config {
	return config{
		consistency: ZLinearizable,
		versions:    8,
		threads:     16,
	}
}

func (c *config) validate() error {
	switch c.consistency {
	case Linearizable, SingleVersion, CausallySerializable, Serializable, ZLinearizable, SnapshotIsolation:
	default:
		return fmt.Errorf("tbtm: invalid consistency level %d", c.consistency)
	}
	if c.versions < 1 {
		return fmt.Errorf("tbtm: versions must be >= 1, got %d", c.versions)
	}
	if c.threads < 1 {
		return fmt.Errorf("tbtm: threads must be >= 1, got %d", c.threads)
	}
	if c.entries < 0 || c.entries > c.threads {
		return fmt.Errorf("tbtm: entries must be in [0, threads], got %d", c.entries)
	}
	if c.mapping != MappingModulo && c.mapping != MappingBlock {
		return fmt.Errorf("tbtm: invalid clock mapping %d", c.mapping)
	}
	if c.realTime && (c.consistency == CausallySerializable || c.consistency == Serializable) {
		return fmt.Errorf("tbtm: real-time clocks apply to scalar time bases, not %v", c.consistency)
	}
	if c.sharedCommitTimes && (c.consistency == CausallySerializable || c.consistency == Serializable) {
		return fmt.Errorf("tbtm: shared commit times apply to scalar time bases, not %v", c.consistency)
	}
	if c.sharedCommitTimes && c.realTime {
		return fmt.Errorf("tbtm: shared commit times and real-time clocks are mutually exclusive")
	}
	if c.stripedClock && (c.consistency == CausallySerializable || c.consistency == Serializable) {
		return fmt.Errorf("tbtm: striped clocks apply to scalar time bases, not %v", c.consistency)
	}
	if c.stripedClock && (c.realTime || c.sharedCommitTimes) {
		return fmt.Errorf("tbtm: striped clocks are mutually exclusive with real-time and shared-commit-time clocks")
	}
	if c.timeBase != nil {
		if c.consistency == CausallySerializable || c.consistency == Serializable {
			return fmt.Errorf("tbtm: custom time bases apply to scalar time bases, not %v", c.consistency)
		}
		if c.realTime || c.sharedCommitTimes || c.stripedClock {
			return fmt.Errorf("tbtm: a custom time base is mutually exclusive with the built-in clock options")
		}
	}
	if c.commitStripesSet {
		if c.consistency != Serializable {
			return fmt.Errorf("tbtm: commit stripes apply to Serializable, not %v", c.consistency)
		}
		if c.commitStripes < 1 {
			return fmt.Errorf("tbtm: commit stripes must be >= 1, got %d", c.commitStripes)
		}
	}
	if c.comb && c.consistency != CausallySerializable && c.consistency != Serializable {
		return fmt.Errorf("tbtm: comb clocks apply to vector time bases, not %v", c.consistency)
	}
	return nil
}

// Option configures New.
type Option func(*config)

// WithConsistency selects the consistency criterion (default
// ZLinearizable).
func WithConsistency(c Consistency) Option {
	return func(cfg *config) { cfg.consistency = c }
}

// WithContention selects the contention-management policy.
func WithContention(p Contention) Option {
	return func(cfg *config) { cfg.contention = p }
}

// WithVersions sets the per-object retained version count for the
// multi-version STMs (default 8; SingleVersion forces 1). For
// CausallySerializable the default is 1 — the paper's base CS-STM keeps
// no old versions — and an explicit n > 1 enables the multi-version
// variant of §4.1 footnote 1, where a read may return an older retained
// version chosen to maximize the chances of successful validation.
// Serializable is always single-version: its visible-read machinery
// registers readers on the current version only.
func WithVersions(n int) Option {
	return func(cfg *config) {
		cfg.versions = n
		cfg.versionsSet = true
	}
}

// WithNoReadSets enables the read-only fast path: declared read-only
// transactions skip read-set maintenance and read at a fixed snapshot
// time (the "LSA-STM (no readsets)" series of the paper's Figure 6).
func WithNoReadSets() Option {
	return func(cfg *config) { cfg.noReadSets = true }
}

// WithThreads sizes the vector time base for CausallySerializable and
// Serializable (default 16). Creating more threads than this is safe;
// extras share clock entries.
func WithThreads(n int) Option {
	return func(cfg *config) { cfg.threads = n }
}

// WithPlausibleEntries sets the plausible-clock width r for the vector
// time bases (paper §4.3): 0 means exact vector clocks (r = threads), 1
// a single shared counter.
func WithPlausibleEntries(r int) Option {
	return func(cfg *config) { cfg.entries = r }
}

// ClockMapping selects how threads share the entries of a plausible
// clock. The paper studies only MappingModulo ("we only consider the
// modulo r mapping", §4.3); MappingBlock groups contiguous thread IDs on
// one entry. Correctness is identical (plausibility holds for any
// mapping); which one produces fewer false conflicts depends on which
// threads actually exchange timestamps — threads sharing an entry have
// their mutual events totally ordered.
type ClockMapping int

// Clock mappings.
const (
	// MappingModulo maps thread p to entry p mod r (the paper's choice).
	MappingModulo ClockMapping = iota
	// MappingBlock maps thread p to entry p*r/threads.
	MappingBlock
)

// WithPlausibleMapping selects the thread→entry mapping used with
// WithPlausibleEntries (default MappingModulo).
func WithPlausibleMapping(m ClockMapping) Option {
	return func(cfg *config) { cfg.mapping = m }
}

// WithPlausibleComb appends a second plausible segment of r+1
// modulo-mapped entries to the vector timestamps of
// CausallySerializable and Serializable — Torres-Rojas & Ahamad's
// "comb" construction, one of the "other types of plausible clocks"
// §4.3 points to [12]. A false ordering must now survive two different
// processor→entry sharings (p ≡ q both mod r and mod r+1), so spurious
// aborts drop markedly for roughly double the timestamp width. All true
// causal order is still captured.
func WithPlausibleComb() Option {
	return func(cfg *config) { cfg.comb = true }
}

// WithValidationFastPath enables the RSTM-style commit fast path
// (paper §3): on the shared-counter time base, a committing transaction
// whose commit time directly follows its snapshot time skips per-object
// read-set validation — no other transaction has committed in between.
// Applies to Linearizable, SingleVersion and (short transactions of)
// ZLinearizable; it is ignored on simulated real-time clocks, which do
// not count commits.
func WithValidationFastPath() Option {
	return func(cfg *config) { cfg.validationFastPath = true }
}

// TimeBase is a pluggable scalar time base for the scalar-clock
// backends (Linearizable, SingleVersion, ZLinearizable and
// SnapshotIsolation). Implementations must be safe for concurrent use.
//
// Now returns the current time as perceived by the calling thread
// (identified by its Thread.ID). CommitTime acquires a fresh commit
// time for that thread: every value must be process-unique, and a value
// acquired after another CommitTime or Now call completed must be
// strictly greater than it.
type TimeBase interface {
	Now(thread int) uint64
	CommitTime(thread int) uint64
}

// WithTimeBase installs a custom scalar time base (see TimeBase). It is
// mutually exclusive with the built-in clock options
// (WithSharedCommitTimes, WithStripedClock, WithSimRealTimeClock).
// WithValidationFastPath is ignored on custom time bases — the fast path
// requires the built-in strictly commit-counting shared counter.
func WithTimeBase(tb TimeBase) Option {
	return func(cfg *config) { cfg.timeBase = tb }
}

// WithStripedClock replaces the shared-counter time base with a striped
// commit counter: slots cache-line-padded counters with thread affinity,
// each owning one congruence class of commit times (paper §4's
// "scalable time bases" direction; see clock.StripedCounter). Committers
// write only their own slot, so the single contended counter line
// disappears; reading the time costs slots uncontended loads. slots <= 0
// selects the default of 8. Applies to Linearizable, SingleVersion,
// ZLinearizable and SnapshotIsolation; mutually exclusive with
// WithSharedCommitTimes and WithSimRealTimeClock. Striping forfeits
// strict commit counting, so WithValidationFastPath is ignored on this
// time base.
func WithStripedClock(slots int) Option {
	return func(cfg *config) {
		cfg.stripedClock = true
		cfg.stripedSlots = slots
	}
}

// WithCommitStripes sets the number of commit lock stripes for the
// Serializable backend (default 64, rounded up to a power of two,
// clamped to [1, 64]). A committing transaction locks the stripes of its
// whole footprint, so commits with disjoint footprints proceed in
// parallel; 1 serializes every commit decision (the pre-striping
// behaviour, useful as a contention baseline).
func WithCommitStripes(n int) Option {
	return func(cfg *config) {
		cfg.commitStripes = n
		cfg.commitStripesSet = true
	}
}

// WithSharedCommitTimes replaces the shared-counter time base with a
// TL2-style sharing counter (paper §3: "at least parts of the overhead
// of the shared integer counter are avoided in TL2 by letting
// transactions share commit times"): a committer whose increment CAS
// fails adopts the concurrent winner's value instead of retrying, so
// heavily contended commits share a tick. Applies to Linearizable,
// SingleVersion, SnapshotIsolation and ZLinearizable; it is mutually
// exclusive with WithSimRealTimeClock. Sharing commit times forfeits
// strict commit counting, so WithValidationFastPath is ignored on this
// time base.
func WithSharedCommitTimes() Option {
	return func(cfg *config) { cfg.sharedCommitTimes = true }
}

// WithZonePatience bounds the backoff rounds a short transaction waits on
// a zone crossing under ZLinearizable before aborting (default 64).
func WithZonePatience(n int) Option {
	return func(cfg *config) { cfg.zonePatience = n }
}

// WithMaxRetries bounds Atomic's retry loop; 0 (default) retries forever.
// Parked waits under WithBlockingRetry do not count as attempts — a
// thread blocked in Retry consumes no retries while it sleeps.
func WithMaxRetries(n int) Option {
	return func(cfg *config) { cfg.maxRetries = n }
}

// WithBlockingRetry enables the event-driven blocking layer: a
// transaction body that returns Retry(tx) parks its thread on the
// transaction's read footprint instead of polling, and every commit
// publishes wakeups for the objects it overwrote. Works with every
// consistency criterion; see Retry and Thread.AtomicOrElse for the
// programming model and Stats.Parks/Wakeups/SpuriousWakeups for the
// counters. Per written object, an update commit pays one atomic load
// when no thread is parked near it, so on most backends leaving the
// option on costs the hot path almost nothing. The exception is
// SnapshotIsolation: SI reads are invisible and normally tracked
// nowhere, so the option makes every SI transaction additionally log an
// (object, Seq) pair per read for the blocking layer to watch. Off by
// default.
func WithBlockingRetry() Option {
	return func(cfg *config) { cfg.blockingRetry = true }
}

// WithAutoClassify enables automatic long/short classification for
// transactions run through Thread.AtomicSite, the alternative the paper
// sketches in §5.3 ("an automatic marking based on past behaviors of
// transactions would be a viable alternative"). Sites whose average
// footprint reaches longOpens opened objects — or that repeatedly abort
// as short transactions with a sizeable footprint — are promoted to
// Long. longOpens <= 0 selects the default of 64.
func WithAutoClassify(longOpens float64) Option {
	return func(cfg *config) {
		cfg.autoClassify = true
		cfg.classifyOpens = longOpens
	}
}

// WithCommitLog sizes the global commit log, the structure behind O(1)
// amortized snapshot extension: every update commit publishes (commit
// tick, written object IDs) into a fixed lock-free ring, and snapshot
// extension (Linearizable, SingleVersion, ZLinearizable shorts),
// snapshot advance (SnapshotIsolation) and commit-time validation
// (CausallySerializable, Serializable, plus the scalar backends'
// commits) check only the log window since the transaction's snapshot
// against its read footprint — O(commits in the window) instead of
// O(read-set size) — falling back to the full read-set walk when the
// window wrapped or hit the footprint.
//
// The log is ON by default with a ring of core.DefaultCommitLogSlots
// records. size > 0 sets the ring size (rounded up to a power of two);
// size <= 0 turns the log off, restoring the pre-log full-validation
// paths (the ablation baseline). On scalar time bases the log needs a
// dense commit-counting tick sequence, so it arms only on the default
// shared counter; under WithStripedClock, WithSharedCommitTimes,
// WithSimRealTimeClock or WithTimeBase it is ignored with no loss of
// correctness, like WithValidationFastPath. See Stats.ExtensionsFast,
// Stats.ExtensionsFull and Stats.LogWraps for the effect.
func WithCommitLog(size int) Option {
	return func(cfg *config) {
		if size <= 0 {
			cfg.commitLog = -1
			return
		}
		cfg.commitLog = size
	}
}

// WithSimRealTimeClock replaces the shared-counter time base with
// simulated internally-synchronized real-time clocks: maxThreads
// per-thread clocks deviating at most epsilon ticks from a common base
// advancing every tick (paper §2 / [9]; see DESIGN.md §7 for the
// substitution). Applies to Linearizable, SingleVersion and
// ZLinearizable.
func WithSimRealTimeClock(maxThreads int, epsilon uint64, tick time.Duration) Option {
	return func(cfg *config) {
		cfg.realTime = true
		cfg.rtMaxThreads = maxThreads
		cfg.rtEpsilon = epsilon
		cfg.rtTick = tick
	}
}
