package tbtm

import (
	"sync"
	"testing"
)

// TestAllContentionPoliciesMakeProgress runs the same contended counter
// workload under every policy: liveness (every increment eventually
// commits) and isolation (no lost updates) must hold regardless of how
// conflicts are arbitrated.
func TestAllContentionPoliciesMakeProgress(t *testing.T) {
	policies := []Contention{
		ContentionDefault, ContentionPolite, ContentionAggressive,
		ContentionSuicide, ContentionKarma, ContentionTimestamp,
		ContentionGreedy, ContentionRandomized, ContentionZoneAware,
	}
	for _, p := range policies {
		p := p
		t.Run(map[Contention]string{
			ContentionDefault: "default", ContentionPolite: "polite",
			ContentionAggressive: "aggressive", ContentionSuicide: "suicide",
			ContentionKarma: "karma", ContentionTimestamp: "timestamp",
			ContentionGreedy: "greedy", ContentionRandomized: "randomized",
			ContentionZoneAware: "zone-aware",
		}[p], func(t *testing.T) {
			tm := MustNew(WithConsistency(Linearizable), WithContention(p))
			counter := NewVar(tm, int64(0))
			const (
				workers = 4
				each    = 50
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < each; i++ {
						if err := th.Atomic(Short, func(tx Tx) error {
							return counter.Modify(tx, func(x int64) int64 { return x + 1 })
						}); err != nil {
							t.Errorf("increment: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			var got int64
			th := tm.NewThread()
			if err := th.AtomicReadOnly(Short, func(tx Tx) error {
				var err error
				got, err = counter.Read(tx)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != workers*each {
				t.Fatalf("counter = %d, want %d (lost update under %v)", got, workers*each, p)
			}
		})
	}
}
