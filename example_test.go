package tbtm_test

import (
	"fmt"

	"tbtm"
)

// The basic shape: create a TM, allocate transactional variables, take a
// per-goroutine Thread handle, and run closures atomically.
func Example() {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	alice := tbtm.NewVar(tm, int64(100))
	bob := tbtm.NewVar(tm, int64(100))

	th := tm.NewThread()
	err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		a, err := alice.Read(tx)
		if err != nil {
			return err
		}
		if err := alice.Write(tx, a-30); err != nil {
			return err
		}
		return bob.Modify(tx, func(b int64) int64 { return b + 30 })
	})
	if err != nil {
		fmt.Println("transfer failed:", err)
		return
	}

	_ = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		a, _ := alice.Read(tx)
		b, _ := bob.Read(tx)
		fmt.Printf("alice=%d bob=%d total=%d\n", a, b, a+b)
		return nil
	})
	// Output: alice=70 bob=130 total=200
}

// Long transactions scan many objects; under ZLinearizable they commit
// with a single counter check instead of read-set validation, so they
// survive concurrent updates (the paper's headline result).
func ExampleThread_AtomicReadOnly() {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	accounts := make([]*tbtm.Var[int64], 8)
	for i := range accounts {
		accounts[i] = tbtm.NewVar(tm, int64(25))
	}

	th := tm.NewThread()
	var total int64
	_ = th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		total = 0
		for _, a := range accounts {
			v, err := a.Read(tx)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	fmt.Println("total:", total)
	// Output: total: 200
}

// Consistency levels are selected at construction; the same code runs
// under any of them.
func ExampleWithConsistency() {
	for _, level := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.ZLinearizable, tbtm.SnapshotIsolation,
	} {
		tm := tbtm.MustNew(tbtm.WithConsistency(level))
		v := tbtm.NewVar(tm, 1)
		th := tm.NewThread()
		_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			return v.Write(tx, 2)
		})
		fmt.Println(tm.Consistency())
	}
	// Output:
	// linearizable
	// z-linearizable
	// snapshot-isolation
}

// Errors inside the closure abort the transaction and pass through
// unchanged; transient conflicts are retried automatically.
func ExampleThread_Atomic_applicationError() {
	tm := tbtm.MustNew()
	balance := tbtm.NewVar(tm, int64(10))
	th := tm.NewThread()

	errInsufficient := fmt.Errorf("insufficient funds")
	err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		b, err := balance.Read(tx)
		if err != nil {
			return err
		}
		if b < 50 {
			return errInsufficient // aborts; not retried
		}
		return balance.Write(tx, b-50)
	})
	fmt.Println(err)

	// The aborted write is invisible.
	_ = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		b, _ := balance.Read(tx)
		fmt.Println("balance:", b)
		return nil
	})
	// Output:
	// insufficient funds
	// balance: 10
}

// Stats exposes the cumulative commit/abort counters of the instance.
func ExampleTM_Stats() {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.Linearizable))
	v := tbtm.NewVar(tm, 0)
	th := tm.NewThread()
	for i := 0; i < 3; i++ {
		_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error { return v.Write(tx, i) })
	}
	fmt.Println("commits:", tm.Stats().Commits)
	// Output: commits: 3
}

// CausallySerializable keeps one version per object by default (the
// paper's base CS-STM); WithVersions(n > 1) enables the multi-version
// variant of §4.1 footnote 1, where reads may return older retained
// versions to maximize the chance of successful validation.
func ExampleWithVersions() {
	tm := tbtm.MustNew(
		tbtm.WithConsistency(tbtm.CausallySerializable),
		tbtm.WithThreads(4),
		tbtm.WithVersions(8),
	)
	v := tbtm.NewVar(tm, "v0")
	th := tm.NewThread()

	// A long reader opens the object, then a writer moves it on twice;
	// the reader still commits against a retained version.
	reader := th.BeginReadOnly(tbtm.Long)
	got, _ := v.Read(reader)

	writer := tm.NewThread()
	_ = writer.Atomic(tbtm.Short, func(tx tbtm.Tx) error { return v.Write(tx, "v1") })
	_ = writer.Atomic(tbtm.Short, func(tx tbtm.Tx) error { return v.Write(tx, "v2") })

	fmt.Println("reader saw:", got)
	fmt.Println("commit:", reader.Commit() == nil)
	// Output:
	// reader saw: v0
	// commit: true
}

// Comb clocks append a second plausible segment so that a false
// ordering must survive two different thread→entry sharings (§4.3's
// "other types of plausible clocks").
func ExampleWithPlausibleComb() {
	tm := tbtm.MustNew(
		tbtm.WithConsistency(tbtm.CausallySerializable),
		tbtm.WithThreads(8),
		tbtm.WithPlausibleEntries(2),
		tbtm.WithPlausibleComb(),
	)
	v := tbtm.NewVar(tm, 1)
	th := tm.NewThread()
	err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return v.Modify(tx, func(x int) int { return x * 10 })
	})
	fmt.Println("err:", err)
	// Output: err: <nil>
}
