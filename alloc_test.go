package tbtm_test

import (
	"errors"
	"testing"

	"tbtm"
)

// The zero-alloc hot-path contract: with recycled descriptors and
// epoch-gated reclamation (internal/epoch) a warm Atomic attempt on the
// scalar-clock backends allocates nothing at all — TxMetas and retired
// Versions are recycled through per-thread pools once their grace period
// passes, including the truncated tails of multi-version chains. The
// vector-clock backends still allocate what genuinely escapes the
// transaction: an update commit's timestamp buffer is published into
// the installed versions (CS-STM), and S-STM's records and visible-read
// machinery outlive the transaction by design. These tests pin the
// bounds so a regression cannot land silently.
const (
	maxAllocsScalar = 0 // LSA, SingleVersion, SI-STM, Z-STM: fully pooled

	maxAllocsCSReadOnly  = 0 // commit timestamps ping-pong two thread buffers
	maxAllocsCSReadWrite = 2 // escaped ct buffer + installed Version

	maxAllocsSSReadOnly  = 3 // TxMeta + Record + ct buffer (all escape into reader lists)
	maxAllocsSSReadWrite = 6 // + floor buffer + installed Version + its reader list
)

// warmValue is pre-boxed so Write does not box a fresh interface value
// inside the measured loop (int64 values < 256 would not allocate
// anyway, but being explicit keeps the test honest about what it pins).
var warmValue any = int64(7)

func measureAtomic(t *testing.T, tm *tbtm.TM, kind tbtm.TxKind, readOnly bool) float64 {
	t.Helper()
	th := tm.NewThread()
	obj := tm.NewObject(int64(0))
	write := func(tx tbtm.Tx) error {
		if _, err := tx.Read(obj); err != nil {
			return err
		}
		return tx.Write(obj, warmValue)
	}
	read := func(tx tbtm.Tx) error {
		_, err := tx.Read(obj)
		return err
	}
	run := func() {
		var err error
		if readOnly {
			err = th.AtomicReadOnly(kind, read)
		} else {
			err = th.Atomic(kind, write)
		}
		if err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	for i := 0; i < 64; i++ {
		run() // warm up: grow the recycled logs and spill structures
	}
	return testing.AllocsPerRun(200, run)
}

func TestAtomicAllocsLSA(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.Linearizable))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsScalar {
		t.Errorf("warm read-only Atomic on LSA: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsScalar {
		t.Errorf("warm read-write Atomic on LSA: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
}

// TestAtomicAllocsSingleVersion pins the headline reclamation result:
// a warm update commit on a keep==1 object reaches zero steady-state
// heap allocations — the installed version and the transaction
// descriptor both come back from the epoch-gated pools.
func TestAtomicAllocsSingleVersion(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.SingleVersion))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsScalar {
		t.Errorf("warm read-only Atomic on SingleVersion: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsScalar {
		t.Errorf("warm read-write Atomic on SingleVersion (keep==1): %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
}

func TestAtomicAllocsZSTM(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsScalar {
		t.Errorf("warm read-only short Atomic on Z-STM: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsScalar {
		t.Errorf("warm read-write short Atomic on Z-STM: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
	if n := measureAtomic(t, tm, tbtm.Long, false); n > maxAllocsScalar {
		t.Errorf("warm read-write long Atomic on Z-STM: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
}

func TestAtomicAllocsSISTM(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.SnapshotIsolation))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsScalar {
		t.Errorf("warm read-only Atomic on SI-STM: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsScalar {
		t.Errorf("warm read-write Atomic on SI-STM: %.1f allocs/op, want <= %d", n, maxAllocsScalar)
	}
}

func TestAtomicAllocsCSSTM(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.CausallySerializable))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsCSReadOnly {
		t.Errorf("warm read-only Atomic on CS-STM: %.1f allocs/op, want <= %d", n, maxAllocsCSReadOnly)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsCSReadWrite {
		t.Errorf("warm read-write Atomic on CS-STM: %.1f allocs/op, want <= %d", n, maxAllocsCSReadWrite)
	}
}

func TestAtomicAllocsSSTM(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.Serializable))
	if n := measureAtomic(t, tm, tbtm.Short, true); n > maxAllocsSSReadOnly {
		t.Errorf("warm read-only Atomic on S-STM: %.1f allocs/op, want <= %d", n, maxAllocsSSReadOnly)
	}
	if n := measureAtomic(t, tm, tbtm.Short, false); n > maxAllocsSSReadWrite {
		t.Errorf("warm read-write Atomic on S-STM: %.1f allocs/op, want <= %d", n, maxAllocsSSReadWrite)
	}
}

// TestRecycledDescriptorIsolation verifies the recycling contract's
// visible semantics: a finished transaction still answers ErrTxDone
// before the next Begin, and recycled descriptors do not leak state
// (read-own-writes, zones, commit hooks) between transactions.
func TestRecycledDescriptorIsolation(t *testing.T) {
	for _, c := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.SingleVersion, tbtm.CausallySerializable,
		tbtm.Serializable, tbtm.ZLinearizable, tbtm.SnapshotIsolation,
	} {
		tm := tbtm.MustNew(tbtm.WithConsistency(c))
		th := tm.NewThread()
		a := tbtm.NewVar(tm, int64(1))
		b := tbtm.NewVar(tm, int64(2))

		tx := th.Begin(tbtm.Short)
		if err := a.Write(tx, int64(10)); err != nil {
			t.Fatalf("%v: Write: %v", c, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%v: Commit: %v", c, err)
		}
		if _, err := a.Read(tx); !errors.Is(err, tbtm.ErrTxDone) {
			t.Errorf("%v: Read on finished tx = %v, want ErrTxDone", c, err)
		}

		// The next transaction may reuse the same descriptor; it must
		// not see the previous write set as its own.
		tx2 := th.Begin(tbtm.Short)
		if v, err := b.Read(tx2); err != nil || v != 2 {
			t.Errorf("%v: fresh read = %v, %v; want 2, nil", c, v, err)
		}
		if v, err := a.Read(tx2); err != nil || v != 10 {
			t.Errorf("%v: committed value = %v, %v; want 10, nil", c, v, err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatalf("%v: second Commit: %v", c, err)
		}
	}
}

func BenchmarkFacadeAtomicLSAReadWrite(b *testing.B) {
	benchFacadeAtomic(b, tbtm.Linearizable, false)
}

func BenchmarkFacadeAtomicLSAReadOnly(b *testing.B) {
	benchFacadeAtomic(b, tbtm.Linearizable, true)
}

func BenchmarkFacadeAtomicZShortReadWrite(b *testing.B) {
	benchFacadeAtomic(b, tbtm.ZLinearizable, false)
}

func benchFacadeAtomic(b *testing.B, c tbtm.Consistency, readOnly bool) {
	tm := tbtm.MustNew(tbtm.WithConsistency(c))
	th := tm.NewThread()
	obj := tm.NewObject(int64(0))
	fn := func(tx tbtm.Tx) error {
		v, err := tx.Read(obj)
		if err != nil {
			return err
		}
		if readOnly {
			return nil
		}
		return tx.Write(obj, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if readOnly {
			err = th.AtomicReadOnly(tbtm.Short, fn)
		} else {
			err = th.Atomic(tbtm.Short, fn)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
