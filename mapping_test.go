package tbtm

import (
	"sort"
	"sync"
	"testing"
)

func TestPlausibleMappingOptions(t *testing.T) {
	for _, m := range []ClockMapping{MappingModulo, MappingBlock} {
		tm, err := New(
			WithConsistency(CausallySerializable),
			WithThreads(8), WithPlausibleEntries(2), WithPlausibleMapping(m))
		if err != nil {
			t.Fatalf("mapping %d: %v", m, err)
		}
		v := NewVar(tm, 1)
		th := tm.NewThread()
		if err := th.Atomic(Short, func(tx Tx) error { return v.Write(tx, 2) }); err != nil {
			t.Fatalf("mapping %d: %v", m, err)
		}
	}
}

func TestInvalidMappingRejected(t *testing.T) {
	if _, err := New(WithPlausibleMapping(ClockMapping(7))); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

// TestMappingIsolationUnderContention runs the bank-style conservation
// check on both mappings: plausible clocks may cause extra aborts but
// never wrong results, whatever the mapping.
func TestMappingIsolationUnderContention(t *testing.T) {
	for _, m := range []ClockMapping{MappingModulo, MappingBlock} {
		m := m
		name := "modulo"
		if m == MappingBlock {
			name = "block"
		}
		t.Run(name, func(t *testing.T) {
			tm := MustNew(
				WithConsistency(CausallySerializable),
				WithThreads(4), WithPlausibleEntries(2), WithPlausibleMapping(m))
			const objects = 6
			vars := make([]*Var[int64], objects)
			for i := range vars {
				vars[i] = NewVar(tm, int64(10))
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < 100; i++ {
						from, to := (w+i)%objects, (w+3*i+1)%objects
						if from == to {
							continue
						}
						_ = th.Atomic(Short, func(tx Tx) error {
							f, err := vars[from].Read(tx)
							if err != nil {
								return err
							}
							g, err := vars[to].Read(tx)
							if err != nil {
								return err
							}
							if err := vars[from].Write(tx, f-1); err != nil {
								return err
							}
							return vars[to].Write(tx, g+1)
						})
					}
				}(w)
			}
			wg.Wait()

			var vals []int64
			th := tm.NewThread()
			if err := th.AtomicReadOnly(Long, func(tx Tx) error {
				vals = vals[:0]
				for _, v := range vars {
					x, err := v.Read(tx)
					if err != nil {
						return err
					}
					vals = append(vals, x)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, v := range vals {
				total += v
			}
			if total != objects*10 {
				sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
				t.Fatalf("total = %d (balances %v), want %d", total, vals, objects*10)
			}
		})
	}
}
