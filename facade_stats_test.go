package tbtm_test

import (
	"errors"
	"testing"

	"tbtm"
)

// TestStatsOldVersions verifies that multi-version read fallbacks are
// surfaced through the facade Stats (they used to be tracked internally
// and silently dropped by the backend adapters).
func TestStatsOldVersions(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.SnapshotIsolation))
	reader, writer := tm.NewThread(), tm.NewThread()
	o := tm.NewObject(int64(0))

	rtx := reader.Begin(tbtm.Short) // snapshot predates the update below
	if err := writer.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return tx.Write(o, int64(1))
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	v, err := rtx.Read(o)
	if err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if v != int64(0) {
		t.Fatalf("snapshot read = %v, want 0", v)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	if s := tm.Stats(); s.OldVersions == 0 {
		t.Errorf("Stats().OldVersions = 0, want > 0 (got %+v)", s)
	}
}

// TestStatsSnapshotMisses drives a single-version snapshot miss and
// checks it shows up in the facade Stats.
func TestStatsSnapshotMisses(t *testing.T) {
	// Commit log off: with it on, the reader's empty footprint lets its
	// snapshot advance past the writer and the miss dissolves (see
	// TestStatsSnapshotAdvance).
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.SnapshotIsolation),
		tbtm.WithVersions(1), tbtm.WithCommitLog(0))
	reader, writer := tm.NewThread(), tm.NewThread()
	o := tm.NewObject(int64(0))

	rtx := reader.Begin(tbtm.Short)
	if err := writer.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return tx.Write(o, int64(1))
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := rtx.Read(o); !errors.Is(err, tbtm.ErrSnapshotUnavailable) {
		t.Fatalf("stale read = %v, want ErrSnapshotUnavailable", err)
	}
	if s := tm.Stats(); s.SnapshotMisses == 0 {
		t.Errorf("Stats().SnapshotMisses = 0, want > 0 (got %+v)", s)
	}
}

// TestWithSharedCommitTimes exercises the TL2-style sharing counter
// through the facade on every scalar-clock backend.
func TestWithSharedCommitTimes(t *testing.T) {
	for _, c := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.SingleVersion, tbtm.ZLinearizable, tbtm.SnapshotIsolation,
	} {
		tm, err := tbtm.New(tbtm.WithConsistency(c), tbtm.WithSharedCommitTimes())
		if err != nil {
			t.Fatalf("%v: New: %v", c, err)
		}
		th := tm.NewThread()
		o := tm.NewObject(int64(0))
		for i := 0; i < 3; i++ {
			if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int64)+1)
			}); err != nil {
				t.Fatalf("%v: Atomic: %v", c, err)
			}
		}
		if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v != int64(3) {
				t.Errorf("%v: value = %v, want 3", c, v)
			}
			return nil
		}); err != nil {
			t.Fatalf("%v: read back: %v", c, err)
		}
		if s := tm.Stats(); s.Commits != 4 {
			t.Errorf("%v: Commits = %d, want 4", c, s.Commits)
		}
	}
}

// TestWithSharedCommitTimesValidation pins the option's interaction
// rules: vector time bases and real-time clocks reject it.
func TestWithSharedCommitTimesValidation(t *testing.T) {
	if _, err := tbtm.New(tbtm.WithConsistency(tbtm.CausallySerializable), tbtm.WithSharedCommitTimes()); err == nil {
		t.Error("CausallySerializable + WithSharedCommitTimes: no error")
	}
	if _, err := tbtm.New(tbtm.WithConsistency(tbtm.Serializable), tbtm.WithSharedCommitTimes()); err == nil {
		t.Error("Serializable + WithSharedCommitTimes: no error")
	}
	if _, err := tbtm.New(tbtm.WithSharedCommitTimes(), tbtm.WithSimRealTimeClock(4, 2, 0)); err == nil {
		t.Error("WithSharedCommitTimes + WithSimRealTimeClock: no error")
	}
}

// TestStatsSnapshotAdvance is TestStatsSnapshotMisses with the commit
// log left on (the default): the reader's footprint is empty, so its
// snapshot advances past the writer's commit and the read succeeds,
// surfacing in the Extensions counters instead of SnapshotMisses.
func TestStatsSnapshotAdvance(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.SnapshotIsolation), tbtm.WithVersions(1))
	reader, writer := tm.NewThread(), tm.NewThread()
	o := tm.NewObject(int64(0))

	rtx := reader.Begin(tbtm.Short)
	if err := writer.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		return tx.Write(o, int64(1))
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	v, err := rtx.Read(o)
	if err != nil {
		t.Fatalf("read after advance = %v, want nil", err)
	}
	if v != int64(1) {
		t.Fatalf("read = %v, want 1 (the advanced snapshot's value)", v)
	}
	if err := rtx.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	s := tm.Stats()
	if s.Extensions == 0 || s.ExtensionsFast == 0 {
		t.Errorf("Extensions/Fast = %d/%d, want > 0 (got %+v)", s.Extensions, s.ExtensionsFast, s)
	}
	if s.SnapshotMisses != 0 {
		t.Errorf("SnapshotMisses = %d, want 0 (got %+v)", s.SnapshotMisses, s)
	}
}

// TestStatsCommitLogFastPath pins the facade counters of the LSA-family
// commit log: disjoint-footprint extension shows up as ExtensionsFast,
// and turning the log off via WithCommitLog(0) restores the full-walk
// accounting.
func TestStatsCommitLogFastPath(t *testing.T) {
	run := func(opts ...tbtm.Option) tbtm.Stats {
		tm := tbtm.MustNew(append([]tbtm.Option{tbtm.WithConsistency(tbtm.Linearizable)}, opts...)...)
		rd, wr := tm.NewThread(), tm.NewThread()
		o1, o2 := tm.NewObject(int64(0)), tm.NewObject(int64(0))

		rtx := rd.Begin(tbtm.Short)
		if _, err := rtx.Read(o1); err != nil {
			t.Fatalf("read o1: %v", err)
		}
		if err := wr.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			return tx.Write(o2, int64(7))
		}); err != nil {
			t.Fatalf("writer: %v", err)
		}
		if _, err := rtx.Read(o2); err != nil {
			t.Fatalf("read o2: %v", err)
		}
		if err := rtx.Commit(); err != nil {
			t.Fatalf("reader commit: %v", err)
		}
		return tm.Stats()
	}

	on := run()
	if on.ExtensionsFast != 1 || on.ExtensionsFull != 0 || on.Extensions != 1 {
		t.Errorf("log on: Extensions/Fast/Full = %d/%d/%d, want 1/1/0 (got %+v)",
			on.Extensions, on.ExtensionsFast, on.ExtensionsFull, on)
	}
	off := run(tbtm.WithCommitLog(0))
	if off.ExtensionsFast != 0 || off.ExtensionsFull != 1 {
		t.Errorf("log off: ExtensionsFast/Full = %d/%d, want 0/1 (got %+v)",
			off.ExtensionsFast, off.ExtensionsFull, off)
	}
}

// TestStatsSub pins the interval-delta helper long-running servers use
// for periodic rate reporting: counters are cumulative, Sub isolates a
// window.
func TestStatsSub(t *testing.T) {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.Linearizable))
	th := tm.NewThread()
	obj := tm.NewObject(int64(0))
	bump := func(n int) {
		for i := 0; i < n; i++ {
			if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				return tx.Write(obj, int64(i))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	bump(3)
	prev := tm.Stats()
	bump(5)
	d := tm.Stats().Sub(prev)
	if d.Commits != 5 {
		t.Fatalf("interval commits = %d, want 5 (prev %+v)", d.Commits, prev)
	}
	if d.Aborts != 0 || d.Parks != 0 {
		t.Fatalf("quiet counters moved: %+v", d)
	}
	// Sub of a snapshot with itself is all-zero.
	cur := tm.Stats()
	if z := cur.Sub(cur); z != (tbtm.Stats{}) {
		t.Fatalf("self-delta not zero: %+v", z)
	}
}
