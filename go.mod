module tbtm

go 1.24
