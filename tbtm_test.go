package tbtm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var allLevels = []Consistency{
	Linearizable, SingleVersion, CausallySerializable, Serializable, ZLinearizable,
	SnapshotIsolation,
}

func TestConsistencyString(t *testing.T) {
	tests := []struct {
		c    Consistency
		want string
	}{
		{Linearizable, "linearizable"},
		{SingleVersion, "single-version"},
		{CausallySerializable, "causally-serializable"},
		{Serializable, "serializable"},
		{ZLinearizable, "z-linearizable"},
		{Consistency(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithConsistency(Consistency(42))); err == nil {
		t.Fatal("invalid consistency accepted")
	}
	if _, err := New(WithVersions(0)); err == nil {
		t.Fatal("zero versions accepted")
	}
	if _, err := New(WithThreads(0)); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := New(WithPlausibleEntries(99), WithThreads(4)); err == nil {
		t.Fatal("entries > threads accepted")
	}
	if _, err := New(WithConsistency(Serializable), WithSimRealTimeClock(4, 2, 0)); err == nil {
		t.Fatal("real-time clock with vector STM accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	MustNew(WithVersions(-1))
}

func TestBasicRoundTripAllLevels(t *testing.T) {
	for _, level := range allLevels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			tm := MustNew(WithConsistency(level))
			if tm.Consistency() != level {
				t.Fatalf("Consistency() = %v", tm.Consistency())
			}
			v := NewVar(tm, int64(10))
			th := tm.NewThread()
			if err := th.Atomic(Short, func(tx Tx) error {
				return v.Modify(tx, func(x int64) int64 { return x + 5 })
			}); err != nil {
				t.Fatal(err)
			}
			var got int64
			if err := th.AtomicReadOnly(Short, func(tx Tx) error {
				var err error
				got, err = v.Read(tx)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != 15 {
				t.Fatalf("value = %d, want 15", got)
			}
			st := tm.Stats()
			if st.Commits < 2 {
				t.Fatalf("stats commits = %d, want >= 2", st.Commits)
			}
		})
	}
}

func TestLongTransactionsAllLevels(t *testing.T) {
	for _, level := range allLevels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			tm := MustNew(WithConsistency(level))
			vars := make([]*Var[int64], 10)
			for i := range vars {
				vars[i] = NewVar(tm, int64(i))
			}
			th := tm.NewThread()
			var sum int64
			if err := th.AtomicReadOnly(Long, func(tx Tx) error {
				sum = 0
				for _, v := range vars {
					x, err := v.Read(tx)
					if err != nil {
						return err
					}
					sum += x
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if sum != 45 {
				t.Fatalf("sum = %d, want 45", sum)
			}
		})
	}
}

func TestWrongObjectRejected(t *testing.T) {
	tm1 := MustNew(WithConsistency(Linearizable))
	tm2 := MustNew(WithConsistency(Linearizable))
	o2 := tm2.NewObject(1)
	th := tm1.NewThread()
	tx := th.Begin(Short)
	defer tx.Abort()
	if _, err := tx.Read(o2); err == nil {
		t.Fatal("cross-TM object read accepted")
	}
	if err := tx.Write(o2, 2); err == nil {
		t.Fatal("cross-TM object write accepted")
	}
	// Cross-implementation: object from a CS-STM instance in an LSA tx.
	tm3 := MustNew(WithConsistency(CausallySerializable))
	o3 := tm3.NewObject(1)
	if _, err := tx.Read(o3); err == nil {
		t.Fatal("cross-implementation object accepted")
	}
}

func TestVarTypeMismatch(t *testing.T) {
	tm := MustNew()
	obj := tm.NewObject("a string")
	v := &Var[int64]{obj: obj}
	th := tm.NewThread()
	err := th.Atomic(Short, func(tx Tx) error {
		_, err := v.Read(tx)
		return err
	})
	if err == nil {
		t.Fatal("type mismatch not reported")
	}
	if IsRetryable(err) {
		t.Fatal("type mismatch reported as retryable")
	}
}

func TestAtomicRetriesConflicts(t *testing.T) {
	tm := MustNew(WithConsistency(Linearizable))
	v := NewVar(tm, int64(0))
	const workers, increments = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < increments; i++ {
				if err := th.Atomic(Short, func(tx Tx) error {
					return v.Modify(tx, func(x int64) int64 { return x + 1 })
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	th := tm.NewThread()
	var got int64
	if err := th.Atomic(Short, func(tx Tx) error {
		var err error
		got, err = v.Read(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != workers*increments {
		t.Fatalf("counter = %d, want %d", got, workers*increments)
	}
}

func TestAtomicPassesThroughUserErrors(t *testing.T) {
	tm := MustNew()
	th := tm.NewThread()
	sentinel := errors.New("application failure")
	calls := 0
	err := th.Atomic(Short, func(Tx) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1 (no retry on user errors)", calls)
	}
}

func TestAtomicMaxRetries(t *testing.T) {
	tm := MustNew(WithMaxRetries(3))
	th := tm.NewThread()
	calls := 0
	err := th.Atomic(Short, func(Tx) error {
		calls++
		return ErrConflict // always conflict
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestReadOnlyEnforced(t *testing.T) {
	for _, level := range allLevels {
		tm := MustNew(WithConsistency(level))
		v := NewVar(tm, 1)
		th := tm.NewThread()
		err := th.AtomicReadOnly(Short, func(tx Tx) error {
			return v.Write(tx, 2)
		})
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%v: err = %v, want ErrReadOnly", level, err)
		}
	}
}

func TestBankInvariantAcrossLevels(t *testing.T) {
	// Transfers conserve the total under every consistency level; the
	// long Compute-Total observes the invariant (all levels here provide
	// at least serializability for this workload shape; CS-STM conserves
	// totals because single-writer plus validation kills stale updates).
	for _, level := range allLevels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			tm := MustNew(WithConsistency(level), WithThreads(8))
			const accounts = 12
			vars := make([]*Var[int64], accounts)
			for i := range vars {
				vars[i] = NewVar(tm, int64(100))
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					th := tm.NewThread()
					for i := 0; i < 50; i++ {
						from := (seed + i) % accounts
						to := (seed + 3*i + 1) % accounts
						if from == to {
							continue
						}
						if err := th.Atomic(Short, func(tx Tx) error {
							f, err := vars[from].Read(tx)
							if err != nil {
								return err
							}
							g, err := vars[to].Read(tx)
							if err != nil {
								return err
							}
							if err := vars[from].Write(tx, f-1); err != nil {
								return err
							}
							return vars[to].Write(tx, g+1)
						}); err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			th := tm.NewThread()
			var total int64
			if err := th.Atomic(Long, func(tx Tx) error {
				total = 0
				for _, v := range vars {
					x, err := v.Read(tx)
					if err != nil {
						return err
					}
					total += x
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if total != accounts*100 {
				t.Fatalf("total = %d, want %d", total, accounts*100)
			}
		})
	}
}

func TestZLinearizableLongUpdateUnderContention(t *testing.T) {
	// The Figure 7 mechanism through the public API: a long update
	// transaction commits while transfers run.
	tm := MustNew(WithConsistency(ZLinearizable))
	const accounts = 16
	vars := make([]*Var[int64], accounts)
	for i := range vars {
		vars[i] = NewVar(tm, int64(100))
	}
	totalVar := NewVar(tm, int64(0))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			i++
			from, to := i%accounts, (i*5+1)%accounts
			if from == to {
				continue
			}
			_ = th.Atomic(Short, func(tx Tx) error {
				f, err := vars[from].Read(tx)
				if err != nil {
					return err
				}
				g, err := vars[to].Read(tx)
				if err != nil {
					return err
				}
				if err := vars[from].Write(tx, f-1); err != nil {
					return err
				}
				return vars[to].Write(tx, g+1)
			})
		}
	}()

	th := tm.NewThread()
	for round := 0; round < 10; round++ {
		if err := th.Atomic(Long, func(tx Tx) error {
			var sum int64
			for _, v := range vars {
				x, err := v.Read(tx)
				if err != nil {
					return err
				}
				sum += x
			}
			if sum != accounts*100 {
				return fmt.Errorf("inconsistent snapshot: %d", sum)
			}
			return totalVar.Write(tx, sum)
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if got := tm.Stats().LongCommits; got != 10 {
		t.Fatalf("long commits = %d, want 10", got)
	}
}

func TestSimRealTimeOption(t *testing.T) {
	tm := MustNew(WithConsistency(Linearizable), WithSimRealTimeClock(8, 3, time.Microsecond))
	v := NewVar(tm, int64(0))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; i < 20; i++ {
				if err := th.Atomic(Short, func(tx Tx) error {
					return v.Modify(tx, func(x int64) int64 { return x + 1 })
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	th := tm.NewThread()
	var got int64
	if err := th.Atomic(Short, func(tx Tx) error {
		var err error
		got, err = v.Read(tx)
		if err != nil {
			return err
		}
		return v.Write(tx, got)
	}); err != nil {
		t.Fatal(err)
	}
	if got != 80 {
		t.Fatalf("counter = %d, want 80", got)
	}
}

func TestContentionOptions(t *testing.T) {
	policies := []Contention{
		ContentionDefault, ContentionPolite, ContentionAggressive,
		ContentionSuicide, ContentionKarma, ContentionTimestamp, ContentionZoneAware,
	}
	for _, p := range policies {
		tm := MustNew(WithContention(p))
		v := NewVar(tm, 0)
		th := tm.NewThread()
		if err := th.Atomic(Short, func(tx Tx) error { return v.Write(tx, 1) }); err != nil {
			t.Fatalf("policy %d: %v", p, err)
		}
	}
}

func TestTxKindAccessor(t *testing.T) {
	tm := MustNew()
	th := tm.NewThread()
	short := th.Begin(Short)
	if short.Kind() != Short {
		t.Fatalf("Kind = %v", short.Kind())
	}
	short.Abort()
	long := th.Begin(Long)
	if long.Kind() != Long {
		t.Fatalf("Kind = %v", long.Kind())
	}
	long.Abort()
}

func TestNoReadSetsOption(t *testing.T) {
	tm := MustNew(WithConsistency(Linearizable), WithNoReadSets())
	v := NewVar(tm, int64(5))
	th := tm.NewThread()
	var got int64
	if err := th.AtomicReadOnly(Long, func(tx Tx) error {
		var err error
		got, err = v.Read(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("value = %d", got)
	}
}

func TestThreadAccessors(t *testing.T) {
	tm := MustNew()
	a, b := tm.NewThread(), tm.NewThread()
	if a.TM() != tm {
		t.Fatal("TM backlink wrong")
	}
	if a.ID() == b.ID() {
		t.Fatal("thread IDs collide")
	}
}
