// Package tbtm is a time-based software transactional memory (TBTM)
// library implementing the consistency-criteria spectrum of Riegel,
// Sturzrehm, Felber and Fetzer, "From Causal to z-Linearizable
// Transactional Memory" (PODC 2007):
//
//   - Linearizable — LSA-STM, a multi-version lazy-snapshot STM [8]
//   - SingleVersion — a lean single-version TBTM in the style of TL2 [2]
//   - CausallySerializable — CS-STM on a vector (or plausible) time base
//   - Serializable — S-STM with precedence tracking over vector time
//   - ZLinearizable — Z-STM, the paper's contribution: long transactions
//     partition short transactions into zones; longs are linearizable,
//     shorts within a zone are linearizable, the union is serializable,
//     and the serialization respects per-thread program order
//
// Usage:
//
//	tm, err := tbtm.New(tbtm.WithConsistency(tbtm.ZLinearizable))
//	acct := tbtm.NewVar(tm, int64(100))
//	th := tm.NewThread() // one handle per goroutine
//	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
//	    v, err := acct.Read(tx)
//	    if err != nil {
//	        return err
//	    }
//	    return acct.Write(tx, v-10)
//	})
//
// Threads: the paper's algorithms carry per-thread state (the vector
// clock component VC_p, the last-zone value LZC_p). Go has no thread
// locals, so each worker goroutine obtains a Thread handle; handles must
// not be shared between goroutines.
package tbtm

import (
	"errors"
	"fmt"

	"tbtm/internal/adaptive"
	"tbtm/internal/core"
	"tbtm/internal/metrics"
	"tbtm/internal/stats"
	"tbtm/internal/telemetry"
)

// Sentinel errors. They alias the kernel's values so errors.Is works on
// errors returned from any layer.
var (
	// ErrConflict reports a transaction aborted by a conflict; retrying
	// may succeed. Atomic retries these automatically.
	ErrConflict = core.ErrConflict
	// ErrAborted reports a transaction aborted explicitly or by a
	// contention manager. Retryable.
	ErrAborted = core.ErrAborted
	// ErrTxDone reports use of a finished transaction.
	ErrTxDone = core.ErrTxDone
	// ErrSnapshotUnavailable reports that no retained object version was
	// old enough for the transaction's snapshot. Retryable.
	ErrSnapshotUnavailable = core.ErrSnapshotUnavailable
	// ErrReadOnly reports a write inside a read-only transaction.
	ErrReadOnly = core.ErrReadOnly
	// ErrRetriesExhausted reports that Atomic gave up after the
	// configured maximum number of attempts.
	ErrRetriesExhausted = errors.New("tbtm: retry limit exhausted")
	// ErrRetryWait is the sentinel returned by Retry: the transaction
	// body cannot proceed until some object in its read footprint is
	// overwritten by a committed transaction. Atomic, AtomicOrElse and
	// AtomicSite intercept it; returning it through any other path makes
	// it an ordinary retryable error.
	ErrRetryWait = errors.New("tbtm: retry waiting for footprint change")
)

// Retry signals from inside an Atomic (or AtomicOrElse, AtomicSite) body
// that the transaction cannot make progress in the current state — a
// consumer found the queue empty, a guard condition is false — and
// should re-run only once the state changes. The body must return the
// result immediately:
//
//	err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
//	    v, err := q.Dequeue(tx)
//	    if errors.Is(err, structs.ErrEmpty) {
//	        return tbtm.Retry(tx)
//	    }
//	    ...
//	})
//
// On a TM built with WithBlockingRetry, the current attempt is aborted
// and the thread parks on the transaction's read footprint until a
// committed transaction overwrites one of the objects it read ("changed"
// means a new committed version of the object, under scalar and vector
// time bases alike); the park consumes no CPU and does not count against
// WithMaxRetries. Without the option — or when the footprint is empty,
// e.g. a declared read-only transaction under WithNoReadSets — Retry
// degrades to polling with the standard backoff.
func Retry(tx Tx) error {
	_ = tx // the footprint is captured from the attempt that returns this
	return ErrRetryWait
}

// IsRetryable reports whether err is a transient transactional failure.
func IsRetryable(err error) bool { return core.IsRetryable(err) }

// TxKind classifies transactions as short or long (paper §5.3). The
// classification must be known at start; under ZLinearizable it selects
// the algorithm (LSA for Short, zone ordering for Long), elsewhere it
// only informs the contention manager.
type TxKind = core.TxKind

// Transaction kinds.
const (
	// Short marks a transaction expected to touch few objects.
	Short = core.Short
	// Long marks a transaction expected to touch many objects (e.g. the
	// paper's Compute-Total bank transaction).
	Long = core.Long
)

// Tx is a transaction in progress. A Tx is owned by one goroutine and
// is invalid after Commit or Abort: the next Begin (or Atomic attempt)
// on the same Thread may recycle the descriptor in place, so a finished
// Tx must not be retained, inspected, or used again. Operations on a
// finished Tx before the next Begin return ErrTxDone.
type Tx interface {
	// Read returns the transaction's view of obj.
	Read(obj Object) (any, error)
	// Write buffers an update of obj to val.
	Write(obj Object, val any) error
	// Commit attempts to commit; on failure the transaction is aborted
	// and a retryable error returned.
	Commit() error
	// Abort aborts the transaction (no-op when already finished).
	Abort()
	// Kind returns the transaction's classification.
	Kind() TxKind
	// meta exposes the kernel descriptor for internal instrumentation.
	meta() *core.TxMeta
	// watches appends the transaction's read footprint (for the blocking
	// layer) and watchesStale re-checks it; see innerTx in backends.go.
	watches(buf []core.Watch) []core.Watch
	watchesStale(ws []core.Watch) bool
}

// Object is an opaque handle to a transactional object, bound to the TM
// that created it.
type Object struct {
	tm *TM
	h  any
}

// backend is the seam between the facade and an STM implementation.
type backend interface {
	newObject(initial any) any
	newThread() backendThread
	stats() Stats
}

type backendThread interface {
	begin(kind TxKind, readOnly bool) Tx
	id() int
}

// TM is a transactional memory instance. All objects and threads are
// bound to the instance that created them.
type TM struct {
	cfg        config
	b          backend
	classifier *adaptive.Classifier // nil unless WithAutoClassify
	lot        *core.ParkingLot     // nil unless WithBlockingRetry

	// reasons aggregates failed-attempt counts by abort reason across
	// the instance's threads (one stats shard per Thread; see
	// AbortReasons). The zero Set is ready to use.
	reasons stats.Set
}

// New creates a TM with the given options. The default configuration is
// ZLinearizable with a shared-counter time base, eight retained versions
// per object, and the zone-aware contention manager.
func New(opts ...Option) (*TM, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tm := &TM{cfg: cfg}
	if cfg.blockingRetry {
		tm.lot = core.NewParkingLot() // before buildBackend: configs capture it
	}
	tm.b = buildBackend(cfg, tm)
	if cfg.autoClassify {
		tm.classifier = adaptive.NewClassifier(adaptive.Config{LongOpens: cfg.classifyOpens})
	}
	return tm, nil
}

// MustNew is New, panicking on configuration errors. Intended for
// examples and tests with static options.
func MustNew(opts ...Option) *TM {
	tm, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return tm
}

// Consistency returns the instance's consistency criterion.
func (tm *TM) Consistency() Consistency { return tm.cfg.consistency }

// NewObject allocates a transactional object holding initial. Values are
// treated as immutable snapshots: writers install new values rather than
// mutating in place, so share only values you will not mutate.
func (tm *TM) NewObject(initial any) Object {
	return Object{tm: tm, h: tm.b.newObject(initial)}
}

// NewThread returns a handle for one worker goroutine. Threads are
// designed to be long-lived: each handle registers a stats shard that
// stays reachable from the TM for the TM's lifetime (counters are
// cumulative), so create one handle per worker and reuse it rather
// than allocating a handle per request.
func (tm *TM) NewThread() *Thread {
	return &Thread{tm: tm, b: tm.b.newThread(), reasons: tm.reasons.NewShard()}
}

// AbortReasons is the per-reason breakdown of failed transaction
// attempts made through the Atomic* helpers (manual Begin/Commit
// pairs are not classified). Retry-wait parks are not aborts and are
// counted separately in Stats.Parks.
type AbortReasons struct {
	// Conflict counts validation failures and lost arbitrations.
	Conflict uint64 `json:"conflict"`
	// Aborted counts contention-manager and explicit aborts.
	Aborted uint64 `json:"aborted"`
	// SnapshotMiss counts attempts that found no retained version old
	// enough for their snapshot.
	SnapshotMiss uint64 `json:"snapshot_miss"`
	// Other counts failures outside the sentinel taxonomy (including
	// non-retryable application errors returned through commit).
	Other uint64 `json:"other"`
}

// AbortReasons returns the instance's cumulative failed-attempt
// counts classified by the internal/metrics taxonomy.
func (tm *TM) AbortReasons() AbortReasons {
	snap := tm.reasons.Snapshot()
	return AbortReasons{
		Conflict:     snap[int(metrics.ReasonConflict)],
		Aborted:      snap[int(metrics.ReasonAborted)],
		SnapshotMiss: snap[int(metrics.ReasonSnapshotMiss)],
		Other:        snap[int(metrics.ReasonOther)],
	}
}

// Stats returns a snapshot of the instance's cumulative counters.
func (tm *TM) Stats() Stats {
	s := tm.b.stats()
	if tm.lot != nil {
		s.Parks, s.Wakeups, s.SpuriousWakeups = tm.lot.Counters()
	}
	return s
}

// Stats aggregates commit/abort counters across backends. Fields that a
// backend does not track are zero.
type Stats struct {
	// Commits and Aborts count short (or only-kind) transactions.
	Commits, Aborts uint64
	// Conflicts counts validation failures and lost arbitrations.
	Conflicts uint64
	// Extensions counts successful snapshot extensions (LSA-family
	// backends) or snapshot advances (SnapshotIsolation with the commit
	// log).
	Extensions uint64
	// ExtensionsFast counts extensions/advances validated by the commit
	// log window alone — no read-set walk (see WithCommitLog).
	ExtensionsFast uint64
	// ExtensionsFull counts extensions/advances that fell back to the
	// full read-set walk (log off, window wrapped, or footprint hit).
	ExtensionsFull uint64
	// LogWraps counts commit-log fast-path fallbacks caused by the log
	// window wrapping (the transaction fell further behind than the ring
	// holds; raise WithCommitLog's size if this dominates).
	LogWraps uint64
	// LongCommits and LongAborts count Z-STM long transactions.
	LongCommits, LongAborts uint64
	// ZoneCrosses counts short aborts due to zone crossings (Z-STM).
	ZoneCrosses uint64
	// ZoneWaits counts zone crossings resolved by waiting for the long
	// transaction to finish (Z-STM).
	ZoneWaits uint64
	// FastValidations counts commits that skipped read-set validation —
	// via the RSTM fast path (LSA-family backends with
	// WithValidationFastPath) or via a clear commit-log window (any
	// backend with the commit log on).
	FastValidations uint64
	// OldVersions counts reads served by a non-current retained version
	// (multi-version backends: LSA, SI-STM, Z-STM shorts).
	OldVersions uint64
	// SnapshotMisses counts aborts because no retained version was old
	// enough for the transaction's snapshot (multi-version backends).
	SnapshotMisses uint64
	// Parks counts threads that blocked in Retry waiting for their read
	// footprint to change (WithBlockingRetry only; a near-miss — the
	// footprint changed between the failed attempt and the park — re-runs
	// without parking and is not counted).
	Parks uint64
	// Wakeups counts parked threads unblocked by a committed update to a
	// watched object.
	Wakeups uint64
	// SpuriousWakeups counts wakeups whose re-run called Retry again —
	// the watched state changed but not into one the transaction could
	// proceed from (e.g. a competing consumer emptied the queue first).
	SpuriousWakeups uint64
}

// Sub returns the element-wise difference s - prev. Counters are
// cumulative for the TM's lifetime, so long-running processes that
// report periodic rates (a server logging per-interval commit counts, a
// load generator isolating its own window) subtract the snapshot taken
// at the start of the interval.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Commits:         s.Commits - prev.Commits,
		Aborts:          s.Aborts - prev.Aborts,
		Conflicts:       s.Conflicts - prev.Conflicts,
		Extensions:      s.Extensions - prev.Extensions,
		ExtensionsFast:  s.ExtensionsFast - prev.ExtensionsFast,
		ExtensionsFull:  s.ExtensionsFull - prev.ExtensionsFull,
		LogWraps:        s.LogWraps - prev.LogWraps,
		LongCommits:     s.LongCommits - prev.LongCommits,
		LongAborts:      s.LongAborts - prev.LongAborts,
		ZoneCrosses:     s.ZoneCrosses - prev.ZoneCrosses,
		ZoneWaits:       s.ZoneWaits - prev.ZoneWaits,
		FastValidations: s.FastValidations - prev.FastValidations,
		OldVersions:     s.OldVersions - prev.OldVersions,
		SnapshotMisses:  s.SnapshotMisses - prev.SnapshotMisses,
		Parks:           s.Parks - prev.Parks,
		Wakeups:         s.Wakeups - prev.Wakeups,
		SpuriousWakeups: s.SpuriousWakeups - prev.SpuriousWakeups,
	}
}

// Thread is a per-goroutine handle. It carries the per-thread state of
// the underlying algorithm and a reference to the TM.
type Thread struct {
	tm *TM
	b  backendThread

	// waiter is the thread's reusable parking handle; watchBuf is the
	// reusable footprint buffer. Both are blocking-layer slow-path state,
	// allocated on the thread's first park.
	waiter   *core.Waiter
	watchBuf []core.Watch

	// lastCommitTick is the scalar commit time of the thread's most
	// recent committed update transaction (see LastCommitTick).
	lastCommitTick uint64

	// begins counts transactions begun on this thread. Single-goroutine
	// by the Thread contract, so a plain field; the server's transport
	// diffs it around an op to recover the attempt count for the flight
	// recorder (attempts-1 = conflict retries).
	begins uint64

	// reasons is this thread's shard of the TM's abort-reason counters.
	reasons *stats.Shard

	// trRing (with trConn/trSeq correlation ids) attaches the thread to
	// a flight-recorder ring so deeper layers (the durable store's WAL
	// gate and fsync waits) can record phase events against the wire op
	// currently executing on this thread. Nil for unattached threads.
	trRing *telemetry.Ring
	trConn uint32
	trSeq  uint64
}

// Begins returns the cumulative number of transactions begun on this
// thread. Only the owning goroutine may call it.
func (th *Thread) Begins() uint64 { return th.begins }

// AttachTrace points the thread at a flight-recorder ring with the
// given correlation ids (conn, seq). The server's transport attaches
// before dispatching each wire op; a nil ring detaches.
//
//tbtm:noalloc
func (th *Thread) AttachTrace(r *telemetry.Ring, conn uint32, seq uint64) {
	th.trRing, th.trConn, th.trSeq = r, conn, seq
}

// Trace returns the attached ring and correlation ids (ring is nil
// when unattached; telemetry record calls are nil-safe).
//
//tbtm:noalloc
func (th *Thread) Trace() (*telemetry.Ring, uint32, uint64) {
	return th.trRing, th.trConn, th.trSeq
}

// begin starts a backend transaction, counting it.
func (th *Thread) begin(kind TxKind, ro bool) Tx {
	th.begins++
	return th.b.begin(kind, ro)
}

// noteAbort classifies one failed attempt into the TM's abort-reason
// counters (cold path: attempts that fail are about to back off or
// return).
func (th *Thread) noteAbort(err error) {
	if th.reasons != nil {
		th.reasons.Inc(int(metrics.Classify(err)))
	}
}

// LastCommitTick returns the engine commit time under which this
// thread's most recent *update* transaction committed through the
// Atomic* helpers installed its writes (manual Begin/Commit pairs are
// not tracked). Read-only and write-free commits leave it unchanged. Ticks
// are totally ordered and dense on scalar-clock backends (Linearizable,
// SingleVersion, ZLinearizable, SnapshotIsolation); conflicting
// transactions commit in tick order, so per-object state can be
// reconstructed by replaying writes in tick order — the property a
// write-ahead log consumer needs. Vector-clock backends
// (CausallySerializable, Serializable) have no scalar commit time and
// always report zero.
func (th *Thread) LastCommitTick() uint64 { return th.lastCommitTick }

// noteCommit records a successful commit's tick; write-free commits
// (tick zero) are ignored so the last update commit stays observable.
func (th *Thread) noteCommit(tx Tx) {
	if ct := tx.meta().CommitTick; ct != 0 {
		th.lastCommitTick = ct
	}
}

// TM returns the owning instance.
func (th *Thread) TM() *TM { return th.tm }

// ID returns the thread's index within the TM's time base.
func (th *Thread) ID() int { return th.b.id() }

// Begin starts a transaction of the given kind.
//
// Begin may recycle the thread's previous transaction descriptor: a Tx
// is invalid after Commit or Abort, and a handle to a finished
// transaction must not be retained across the next Begin on the same
// thread. This keeps the warm begin→commit path free of descriptor
// allocations.
func (th *Thread) Begin(kind TxKind) Tx { return th.begin(kind, false) }

// BeginReadOnly starts a transaction that declares it will not write.
// Read-only transactions enable old-version fallbacks and, with
// WithNoReadSets, skip read-set maintenance entirely.
func (th *Thread) BeginReadOnly(kind TxKind) Tx { return th.begin(kind, true) }

// Atomic runs fn inside a transaction of the given kind, retrying on
// transient conflicts with exponential backoff. fn may be re-executed
// any number of times and must not have side effects beyond the
// transaction. A non-retryable error from fn (or from commit) aborts the
// transaction and is returned unchanged. fn may return Retry(tx) to
// block until the transaction's read footprint changes (see Retry).
func (th *Thread) Atomic(kind TxKind, fn func(Tx) error) error {
	return th.atomic(kind, false, fn, nil)
}

// AtomicReadOnly is Atomic for transactions that declare they will not
// write.
func (th *Thread) AtomicReadOnly(kind TxKind, fn func(Tx) error) error {
	return th.atomic(kind, true, fn, nil)
}

// AtomicOrElse composes two alternatives (the orElse combinator of
// Harris et al.'s composable memory transactions): it runs fn, and if fn
// asks to Retry, runs alt in a fresh transaction of the same kind. If
// alt also retries, the thread blocks on the union of both attempts'
// read footprints — a committed update to anything either alternative
// read re-runs the pair from fn. Either body committing completes the
// call; non-retryable errors return unchanged.
func (th *Thread) AtomicOrElse(kind TxKind, fn, alt func(Tx) error) error {
	return th.atomic(kind, false, fn, alt)
}

// AtomicSite runs fn like Atomic but classifies the transaction as short
// or long automatically from the named site's past behaviour (its
// average footprint and abort history), implementing §5.3's "automatic
// marking based on past behaviors". New sites start as Short. The TM
// must be built with WithAutoClassify; otherwise AtomicSite behaves like
// Atomic(Short, fn).
func (th *Thread) AtomicSite(site string, fn func(Tx) error) error {
	cls := th.tm.classifier
	if cls == nil {
		return th.Atomic(Short, fn)
	}
	kind := cls.Classify(site)
	max := th.tm.cfg.maxRetries
	blocked := false // see atomic
	for attempt := 0; ; attempt++ {
		tx := th.begin(kind, false)
		err := fn(tx)
		// Capture the open count (Prio counts opened objects across all
		// implementations) BEFORE Commit/Abort release the descriptor:
		// finishing ends the epoch critical section, after which the
		// recycler may Reset the meta for another transaction, so a later
		// Prio.Load could observe a stale or zero footprint and feed the
		// classifier garbage.
		opens := int(tx.meta().Prio.Load())
		wantsRetry := errors.Is(err, ErrRetryWait)
		if err == nil {
			err = tx.Commit()
		} else if !wantsRetry {
			tx.Abort() // Retry aborts below, after the footprint is captured
		}
		if !wantsRetry {
			// A blocked attempt is neither a commit nor a contention
			// abort — feeding it to the classifier would grow the site's
			// abort streak (and promote it to Long) merely for being
			// idle, so Retry attempts are not observed.
			kind = cls.Observe(site, opens, err == nil)
		}
		if err == nil {
			th.noteCommit(tx)
			return nil
		}
		if wantsRetry {
			rerun, didBlock := th.parkForRetry(tx, blocked)
			if rerun {
				blocked = didBlock
				attempt = -1 // parked waits are not contention retries
				continue
			}
			blocked = false
		} else {
			blocked = false
			th.noteAbort(err)
			if !core.IsRetryable(err) {
				return err
			}
		}
		if max > 0 && attempt+1 >= max {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err)
		}
		backoff(attempt)
	}
}

// atomic is the shared retry loop behind Atomic, AtomicReadOnly and
// AtomicOrElse (alt == nil disables the orElse arm).
func (th *Thread) atomic(kind TxKind, ro bool, fn, alt func(Tx) error) error {
	max := th.tm.cfg.maxRetries
	// blocked remembers that the previous re-run followed an actual park,
	// so a re-run that immediately retries again counts as a spurious
	// wakeup.
	blocked := false
	for attempt := 0; ; attempt++ {
		tx := th.begin(kind, ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit() // aborts internally on failure
		}
		if err == nil {
			th.noteCommit(tx)
			return nil
		}
		if errors.Is(err, ErrRetryWait) {
			// Capture the footprint while the descriptor is still live,
			// then abort the attempt; the Watch entries carry only object
			// handles and Seq values, never version or descriptor
			// pointers, so they stay valid across the park.
			ws := tx.watches(th.watchBuf[:0])
			tx.Abort()
			if alt != nil {
				tx2 := th.begin(kind, ro)
				err2 := alt(tx2)
				if err2 == nil {
					err2 = tx2.Commit()
				}
				if err2 == nil {
					th.noteCommit(tx2)
					th.watchBuf = resetWatches(ws)
					return nil
				}
				if errors.Is(err2, ErrRetryWait) {
					// Park on the union of both footprints.
					ws = tx2.watches(ws)
					tx2.Abort()
					tx = tx2
				} else {
					tx2.Abort()
					th.noteAbort(err2)
					th.watchBuf = resetWatches(ws)
					if !core.IsRetryable(err2) {
						return err2
					}
					blocked = false
					if max > 0 && attempt+1 >= max {
						return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err2)
					}
					backoff(attempt)
					continue
				}
			}
			// Only now — with fn (and the alternative, if any) both asking
			// to retry again — is the previous wakeup known to have been
			// unproductive.
			if blocked && th.tm.lot != nil {
				th.tm.lot.NoteSpurious()
			}
			rerun, didBlock := th.parkOn(tx, ws)
			th.watchBuf = resetWatches(ws)
			if rerun {
				blocked = didBlock
				attempt = -1 // parked waits are not contention retries
				continue
			}
			blocked = false
			// No parking available (no lot, or empty footprint): degrade
			// to the standard bounded polling below.
		} else {
			blocked = false
			tx.Abort() // no-op when the error came from Commit
			th.noteAbort(err)
			if !core.IsRetryable(err) {
				return err
			}
		}
		if max > 0 && attempt+1 >= max {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err)
		}
		backoff(attempt)
	}
}

// parkForRetry captures tx's read footprint, aborts the attempt, and
// parks until the footprint changes (AtomicSite's single-body variant of
// the flow inlined in atomic). wokePrev reports that the attempt was the
// re-run of an actual park — retrying again makes that wakeup spurious.
func (th *Thread) parkForRetry(tx Tx, wokePrev bool) (rerun, didBlock bool) {
	ws := tx.watches(th.watchBuf[:0])
	tx.Abort()
	if wokePrev && th.tm.lot != nil {
		th.tm.lot.NoteSpurious()
	}
	rerun, didBlock = th.parkOn(tx, ws)
	th.watchBuf = resetWatches(ws)
	return rerun, didBlock
}

// parkOn blocks the thread until some watched object is overwritten by a
// committed transaction. tx is the (finished) attempt whose backend
// re-checks watch currency. It returns rerun=false when blocking is
// unavailable — no parking lot, or an empty footprint — and the caller
// must poll instead; didBlock distinguishes a real park from a near-miss
// (the footprint changed before the thread got to sleep).
//
// The enqueue → re-check → block order is what makes wakeups lossless: a
// writer that committed before our registration is caught by the
// re-check (watchesStale observes its install), and one that commits
// after it finds us registered and notifies.
func (th *Thread) parkOn(tx Tx, ws []core.Watch) (rerun, didBlock bool) {
	lot := th.tm.lot
	if lot == nil || len(ws) == 0 {
		return false, false
	}
	if th.waiter == nil {
		th.waiter = core.NewWaiter()
	}
	lot.Enqueue(th.waiter, ws)
	if tx.watchesStale(ws) {
		lot.Dequeue(th.waiter, ws)
		return true, false // near-miss: re-run immediately
	}
	lot.Block(th.waiter)
	lot.Dequeue(th.waiter, ws)
	return true, true
}

// resetWatches clears the buffer's object references and returns it
// empty for reuse.
func resetWatches(ws []core.Watch) []core.Watch {
	clear(ws)
	return ws[:0]
}
