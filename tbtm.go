// Package tbtm is a time-based software transactional memory (TBTM)
// library implementing the consistency-criteria spectrum of Riegel,
// Sturzrehm, Felber and Fetzer, "From Causal to z-Linearizable
// Transactional Memory" (PODC 2007):
//
//   - Linearizable — LSA-STM, a multi-version lazy-snapshot STM [8]
//   - SingleVersion — a lean single-version TBTM in the style of TL2 [2]
//   - CausallySerializable — CS-STM on a vector (or plausible) time base
//   - Serializable — S-STM with precedence tracking over vector time
//   - ZLinearizable — Z-STM, the paper's contribution: long transactions
//     partition short transactions into zones; longs are linearizable,
//     shorts within a zone are linearizable, the union is serializable,
//     and the serialization respects per-thread program order
//
// Usage:
//
//	tm, err := tbtm.New(tbtm.WithConsistency(tbtm.ZLinearizable))
//	acct := tbtm.NewVar(tm, int64(100))
//	th := tm.NewThread() // one handle per goroutine
//	err = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
//	    v, err := acct.Read(tx)
//	    if err != nil {
//	        return err
//	    }
//	    return acct.Write(tx, v-10)
//	})
//
// Threads: the paper's algorithms carry per-thread state (the vector
// clock component VC_p, the last-zone value LZC_p). Go has no thread
// locals, so each worker goroutine obtains a Thread handle; handles must
// not be shared between goroutines.
package tbtm

import (
	"errors"
	"fmt"

	"tbtm/internal/adaptive"
	"tbtm/internal/core"
)

// Sentinel errors. They alias the kernel's values so errors.Is works on
// errors returned from any layer.
var (
	// ErrConflict reports a transaction aborted by a conflict; retrying
	// may succeed. Atomic retries these automatically.
	ErrConflict = core.ErrConflict
	// ErrAborted reports a transaction aborted explicitly or by a
	// contention manager. Retryable.
	ErrAborted = core.ErrAborted
	// ErrTxDone reports use of a finished transaction.
	ErrTxDone = core.ErrTxDone
	// ErrSnapshotUnavailable reports that no retained object version was
	// old enough for the transaction's snapshot. Retryable.
	ErrSnapshotUnavailable = core.ErrSnapshotUnavailable
	// ErrReadOnly reports a write inside a read-only transaction.
	ErrReadOnly = core.ErrReadOnly
	// ErrRetriesExhausted reports that Atomic gave up after the
	// configured maximum number of attempts.
	ErrRetriesExhausted = errors.New("tbtm: retry limit exhausted")
)

// IsRetryable reports whether err is a transient transactional failure.
func IsRetryable(err error) bool { return core.IsRetryable(err) }

// TxKind classifies transactions as short or long (paper §5.3). The
// classification must be known at start; under ZLinearizable it selects
// the algorithm (LSA for Short, zone ordering for Long), elsewhere it
// only informs the contention manager.
type TxKind = core.TxKind

// Transaction kinds.
const (
	// Short marks a transaction expected to touch few objects.
	Short = core.Short
	// Long marks a transaction expected to touch many objects (e.g. the
	// paper's Compute-Total bank transaction).
	Long = core.Long
)

// Tx is a transaction in progress. A Tx is owned by one goroutine and
// is invalid after Commit or Abort: the next Begin (or Atomic attempt)
// on the same Thread may recycle the descriptor in place, so a finished
// Tx must not be retained, inspected, or used again. Operations on a
// finished Tx before the next Begin return ErrTxDone.
type Tx interface {
	// Read returns the transaction's view of obj.
	Read(obj Object) (any, error)
	// Write buffers an update of obj to val.
	Write(obj Object, val any) error
	// Commit attempts to commit; on failure the transaction is aborted
	// and a retryable error returned.
	Commit() error
	// Abort aborts the transaction (no-op when already finished).
	Abort()
	// Kind returns the transaction's classification.
	Kind() TxKind
	// meta exposes the kernel descriptor for internal instrumentation.
	meta() *core.TxMeta
}

// Object is an opaque handle to a transactional object, bound to the TM
// that created it.
type Object struct {
	tm *TM
	h  any
}

// backend is the seam between the facade and an STM implementation.
type backend interface {
	newObject(initial any) any
	newThread() backendThread
	stats() Stats
}

type backendThread interface {
	begin(kind TxKind, readOnly bool) Tx
	id() int
}

// TM is a transactional memory instance. All objects and threads are
// bound to the instance that created them.
type TM struct {
	cfg        config
	b          backend
	classifier *adaptive.Classifier // nil unless WithAutoClassify
}

// New creates a TM with the given options. The default configuration is
// ZLinearizable with a shared-counter time base, eight retained versions
// per object, and the zone-aware contention manager.
func New(opts ...Option) (*TM, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tm := &TM{cfg: cfg}
	tm.b = buildBackend(cfg, tm)
	if cfg.autoClassify {
		tm.classifier = adaptive.NewClassifier(adaptive.Config{LongOpens: cfg.classifyOpens})
	}
	return tm, nil
}

// MustNew is New, panicking on configuration errors. Intended for
// examples and tests with static options.
func MustNew(opts ...Option) *TM {
	tm, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return tm
}

// Consistency returns the instance's consistency criterion.
func (tm *TM) Consistency() Consistency { return tm.cfg.consistency }

// NewObject allocates a transactional object holding initial. Values are
// treated as immutable snapshots: writers install new values rather than
// mutating in place, so share only values you will not mutate.
func (tm *TM) NewObject(initial any) Object {
	return Object{tm: tm, h: tm.b.newObject(initial)}
}

// NewThread returns a handle for one worker goroutine. Threads are
// designed to be long-lived: each handle registers a stats shard that
// stays reachable from the TM for the TM's lifetime (counters are
// cumulative), so create one handle per worker and reuse it rather
// than allocating a handle per request.
func (tm *TM) NewThread() *Thread {
	return &Thread{tm: tm, b: tm.b.newThread()}
}

// Stats returns a snapshot of the instance's cumulative counters.
func (tm *TM) Stats() Stats { return tm.b.stats() }

// Stats aggregates commit/abort counters across backends. Fields that a
// backend does not track are zero.
type Stats struct {
	// Commits and Aborts count short (or only-kind) transactions.
	Commits, Aborts uint64
	// Conflicts counts validation failures and lost arbitrations.
	Conflicts uint64
	// Extensions counts successful LSA snapshot extensions.
	Extensions uint64
	// LongCommits and LongAborts count Z-STM long transactions.
	LongCommits, LongAborts uint64
	// ZoneCrosses counts short aborts due to zone crossings (Z-STM).
	ZoneCrosses uint64
	// ZoneWaits counts zone crossings resolved by waiting for the long
	// transaction to finish (Z-STM).
	ZoneWaits uint64
	// FastValidations counts commits that skipped read-set validation
	// via the RSTM fast path (LSA-family backends with
	// WithValidationFastPath).
	FastValidations uint64
	// OldVersions counts reads served by a non-current retained version
	// (multi-version backends: LSA, SI-STM, Z-STM shorts).
	OldVersions uint64
	// SnapshotMisses counts aborts because no retained version was old
	// enough for the transaction's snapshot (multi-version backends).
	SnapshotMisses uint64
}

// Thread is a per-goroutine handle. It carries the per-thread state of
// the underlying algorithm and a reference to the TM.
type Thread struct {
	tm *TM
	b  backendThread
}

// TM returns the owning instance.
func (th *Thread) TM() *TM { return th.tm }

// ID returns the thread's index within the TM's time base.
func (th *Thread) ID() int { return th.b.id() }

// Begin starts a transaction of the given kind.
//
// Begin may recycle the thread's previous transaction descriptor: a Tx
// is invalid after Commit or Abort, and a handle to a finished
// transaction must not be retained across the next Begin on the same
// thread. This keeps the warm begin→commit path free of descriptor
// allocations.
func (th *Thread) Begin(kind TxKind) Tx { return th.b.begin(kind, false) }

// BeginReadOnly starts a transaction that declares it will not write.
// Read-only transactions enable old-version fallbacks and, with
// WithNoReadSets, skip read-set maintenance entirely.
func (th *Thread) BeginReadOnly(kind TxKind) Tx { return th.b.begin(kind, true) }

// Atomic runs fn inside a transaction of the given kind, retrying on
// transient conflicts with exponential backoff. fn may be re-executed
// any number of times and must not have side effects beyond the
// transaction. A non-retryable error from fn (or from commit) aborts the
// transaction and is returned unchanged.
func (th *Thread) Atomic(kind TxKind, fn func(Tx) error) error {
	return th.atomic(kind, false, fn)
}

// AtomicReadOnly is Atomic for transactions that declare they will not
// write.
func (th *Thread) AtomicReadOnly(kind TxKind, fn func(Tx) error) error {
	return th.atomic(kind, true, fn)
}

// AtomicSite runs fn like Atomic but classifies the transaction as short
// or long automatically from the named site's past behaviour (its
// average footprint and abort history), implementing §5.3's "automatic
// marking based on past behaviors". New sites start as Short. The TM
// must be built with WithAutoClassify; otherwise AtomicSite behaves like
// Atomic(Short, fn).
func (th *Thread) AtomicSite(site string, fn func(Tx) error) error {
	cls := th.tm.classifier
	if cls == nil {
		return th.Atomic(Short, fn)
	}
	kind := cls.Classify(site)
	max := th.tm.cfg.maxRetries
	for attempt := 0; ; attempt++ {
		tx := th.b.begin(kind, false)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		// Prio counts opened objects across all implementations.
		opens := int(tx.meta().Prio.Load())
		kind = cls.Observe(site, opens, err == nil)
		if err == nil {
			return nil
		}
		if !core.IsRetryable(err) {
			return err
		}
		if max > 0 && attempt+1 >= max {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err)
		}
		backoff(attempt)
	}
}

func (th *Thread) atomic(kind TxKind, ro bool, fn func(Tx) error) error {
	max := th.tm.cfg.maxRetries
	for attempt := 0; ; attempt++ {
		tx := th.b.begin(kind, ro)
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return nil
		}
		if !core.IsRetryable(err) {
			return err
		}
		if max > 0 && attempt+1 >= max {
			return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt+1, err)
		}
		backoff(attempt)
	}
}
