// Quickstart: the smallest useful tbtm program. Two goroutines transfer
// money between accounts under the z-linearizable STM while a third runs
// long Compute-Total transactions; every total observes the invariant.
package main

import (
	"fmt"
	"log"
	"sync"

	"tbtm"
)

func main() {
	tm, err := tbtm.New(tbtm.WithConsistency(tbtm.ZLinearizable))
	if err != nil {
		log.Fatal(err)
	}

	alice := tbtm.NewVar(tm, int64(100))
	bob := tbtm.NewVar(tm, int64(100))

	transfer := func(th *tbtm.Thread, from, to *tbtm.Var[int64], amount int64) error {
		return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			f, err := from.Read(tx)
			if err != nil {
				return err
			}
			t, err := to.Read(tx)
			if err != nil {
				return err
			}
			if err := from.Write(tx, f-amount); err != nil {
				return err
			}
			return to.Write(tx, t+amount)
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread() // one handle per goroutine
			for i := 0; i < 500; i++ {
				var err error
				if (i+w)%2 == 0 {
					err = transfer(th, alice, bob, 1)
				} else {
					err = transfer(th, bob, alice, 1)
				}
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
			}
		}(w)
	}

	// A long read-only transaction scanning both accounts: under
	// z-linearizability it always sees a consistent snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for i := 0; i < 50; i++ {
			var total int64
			if err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
				a, err := alice.Read(tx)
				if err != nil {
					return err
				}
				b, err := bob.Read(tx)
				if err != nil {
					return err
				}
				total = a + b
				return nil
			}); err != nil {
				log.Fatalf("total: %v", err)
			}
			if total != 200 {
				log.Fatalf("invariant violated: total = %d", total)
			}
		}
	}()
	wg.Wait()

	th := tm.NewThread()
	var a, b int64
	if err := th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		var err error
		if a, err = alice.Read(tx); err != nil {
			return err
		}
		b, err = bob.Read(tx)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	st := tm.Stats()
	fmt.Printf("final balances: alice=%d bob=%d (total %d)\n", a, b, a+b)
	fmt.Printf("stats: %d short commits, %d long commits, %d aborts\n",
		st.Commits, st.LongCommits, st.Aborts+st.LongAborts)
}
