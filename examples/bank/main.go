// Bank: the paper's §5.5 scenario as an application. A bank with 1,000
// accounts processes concurrent transfers while one teller computes the
// aggregate balance in long transactions — first read-only, then as
// update transactions persisting the audit result. Run with different
// -consistency values to see which criteria keep the auditor live under
// load (the paper's Figure 7 phenomenon: linearizable LSA-STM starves
// long update transactions; Z-STM sustains them).
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
)

func main() {
	consistency := flag.String("consistency", "z-linearizable",
		"linearizable | single-version | causally-serializable | serializable | z-linearizable")
	accounts := flag.Int("accounts", 1000, "number of accounts")
	duration := flag.Duration("duration", 300*time.Millisecond, "run duration")
	flag.Parse()

	level, err := parseLevel(*consistency)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := tbtm.New(tbtm.WithConsistency(level), tbtm.WithVersions(256))
	if err != nil {
		log.Fatal(err)
	}

	vars := make([]*tbtm.Var[int64], *accounts)
	for i := range vars {
		vars[i] = tbtm.NewVar(tm, int64(1000))
	}
	auditLog := tbtm.NewVar(tm, int64(0))
	want := int64(*accounts) * 1000

	var (
		stop      atomic.Bool
		transfers atomic.Uint64
		audits    atomic.Uint64
		wg        sync.WaitGroup
	)

	// Three transfer tellers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			th := tm.NewThread()
			i := 0
			for !stop.Load() {
				i++
				from := (seed*31 + i*7) % *accounts
				to := (seed*17 + i*13 + 1) % *accounts
				if from == to {
					continue
				}
				err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					f, err := vars[from].Read(tx)
					if err != nil {
						return err
					}
					t, err := vars[to].Read(tx)
					if err != nil {
						return err
					}
					if err := vars[from].Write(tx, f-1); err != nil {
						return err
					}
					return vars[to].Write(tx, t+1)
				})
				if err == nil {
					transfers.Add(1)
				}
			}
		}(w)
	}

	// One auditor running long update transactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for !stop.Load() {
			err := th.Atomic(tbtm.Long, func(tx tbtm.Tx) error {
				var sum int64
				for _, v := range vars {
					x, err := v.Read(tx)
					if err != nil {
						return err
					}
					sum += x
				}
				if sum != want {
					return fmt.Errorf("inconsistent snapshot: %d != %d", sum, want)
				}
				return auditLog.Write(tx, sum)
			})
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			audits.Add(1)
		}
	}()

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	// Final consistency check.
	th := tm.NewThread()
	var total int64
	if err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		total = 0
		for _, v := range vars {
			x, err := v.Read(tx)
			if err != nil {
				return err
			}
			total += x
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	st := tm.Stats()
	fmt.Printf("consistency: %s\n", level)
	fmt.Printf("transfers committed: %d (%.0f/s)\n", transfers.Load(),
		float64(transfers.Load())/duration.Seconds())
	fmt.Printf("audits committed:    %d (%.0f/s)\n", audits.Load(),
		float64(audits.Load())/duration.Seconds())
	fmt.Printf("total: %d (invariant %d, %s)\n", total, want, okStr(total == want))
	fmt.Printf("aborts: %d short, %d long, %d zone crossings\n",
		st.Aborts, st.LongAborts, st.ZoneCrosses)
}

func parseLevel(s string) (tbtm.Consistency, error) {
	for _, c := range []tbtm.Consistency{
		tbtm.Linearizable, tbtm.SingleVersion, tbtm.CausallySerializable,
		tbtm.Serializable, tbtm.ZLinearizable,
	} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown consistency level %q", s)
}

func okStr(ok bool) string {
	if ok {
		return "OK"
	}
	return "VIOLATED"
}
