// Zones: makes the paper's §5 zone semantics observable. A long
// transaction opens objects one by one while short transactions probe
// the three situations of Algorithm 3:
//
//  1. a short touching only objects the long already opened joins its
//     zone and commits (and may even overwrite what the long read);
//  2. a short spanning an opened and an unopened object crosses zones
//     and is delayed until the long commits;
//  3. a thread that committed inside the active zone cannot start a
//     transaction in the past of that zone (program order, property 4).
package main

import (
	"fmt"
	"log"
	"time"

	"tbtm/internal/core"
	"tbtm/internal/zstm"
)

func main() {
	// This example uses the internal Z-STM package directly so that zone
	// numbers (T.zc, o.zc, CT) are visible; the facade hides them.
	s := zstm.New(zstm.Config{ZonePatience: 1 << 16})
	a := s.NewObject(int64(1))
	b := s.NewObject(int64(2))
	c := s.NewObject(int64(3))

	thLong := s.NewThread()
	thShort := s.NewThread()

	long := thLong.BeginLong(true)
	fmt.Printf("long transaction starts: zone %d (CT=%d, active interval (%d,%d])\n",
		long.ZC(), s.CT(), s.CT(), s.ZC())

	mustRead := func(tx *zstm.LongTx, o *core.Object, name string) {
		v, err := tx.Read(o)
		if err != nil {
			log.Fatalf("long read %s: %v", name, err)
		}
		fmt.Printf("  long opens %s (o.zc now %d), reads %v\n", name, o.ZC(), v)
	}
	mustRead(long, a, "a")
	mustRead(long, b, "b")

	// (1) A short over {a, b} joins zone 1 and commits mid-flight.
	s1 := thShort.BeginShort(false)
	if _, err := s1.Read(a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short S1 opens a -> adopts zone %d (the long's zone)\n", s1.ZC())
	if err := s1.Write(b, int64(20)); err != nil {
		log.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("short S1 commits inside the active zone (it serializes after the long)")

	// (2) A short over {a, c} crosses zones: c is still in the primordial
	// zone. It blocks until the long commits.
	crossed := make(chan error, 1)
	go func() {
		th := s.NewThread()
		tx := th.BeginShort(false)
		if _, err := tx.Read(a); err != nil {
			crossed <- err
			return
		}
		fmt.Printf("short S2 opens a (zone %d), now opening c (zone %d): crossing...\n",
			tx.ZC(), c.ZC())
		if _, err := tx.Read(c); err != nil { // blocks while zone 1 is active
			crossed <- err
			return
		}
		crossed <- tx.Commit()
	}()
	select {
	case err := <-crossed:
		log.Fatalf("S2 finished while the long was still active: %v", err)
	case <-time.After(20 * time.Millisecond):
		fmt.Println("  ...S2 is delayed by the contention manager (zone still active)")
	}

	// (3) thShort committed in zone 1 (LZC); it cannot go back to the
	// primordial zone while zone 1 is active.
	s3 := thShort.BeginShort(false)
	if _, err := s3.Read(c); err == nil {
		log.Fatal("S3 moved backwards across an active long transaction")
	} else {
		fmt.Printf("short S3 on the same thread (LZC=%d) cannot open c from the past zone: %v\n",
			thShort.LZC(), err)
	}

	if err := long.Commit(); err != nil {
		log.Fatalf("long commit: %v", err)
	}
	fmt.Printf("long commits: CT=%d, zones <= %d are now in the past\n", s.CT(), s.CT())

	if err := <-crossed; err != nil {
		log.Fatalf("S2 after long commit: %v", err)
	}
	fmt.Println("short S2 proceeds and commits at CT after the long committed")

	st := s.Stats()
	fmt.Printf("stats: %d short commits, %d long commits, %d crossings waited out\n",
		st.Short.Commits, st.LongCommits, st.ZoneWaits)
}
