// Multiversion: demonstrates §4.1 footnote 1 through the public API.
// The paper's base CS-STM keeps a single version per object, so a long
// read-only scan is invalidated by any concurrent update chain that its
// rising vector timestamp eventually dominates. "Keeping multiple
// versions would allow a transaction to choose the version that
// maximizes the chances of successful validation" — with
// WithVersions(8), the same scan picks older retained versions and
// commits.
//
// The program runs the same workload twice — an auditor repeatedly
// summing 64 accounts while two tellers transfer between them — first
// on single-version CS-STM, then on the multi-version variant, and
// prints how many audits committed within the attempt budget.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"tbtm"
)

const (
	accounts    = 64
	initialEach = 100
	audits      = 40
	auditBudget = 25 // attempts per audit before giving up
)

func main() {
	for _, cfg := range []struct {
		name string
		opts []tbtm.Option
	}{
		{"CS-STM, single version (paper's base algorithm)", []tbtm.Option{
			tbtm.WithConsistency(tbtm.CausallySerializable),
			tbtm.WithThreads(4),
			tbtm.WithMaxRetries(auditBudget),
		}},
		{"CS-STM, 8 retained versions (footnote 1)", []tbtm.Option{
			tbtm.WithConsistency(tbtm.CausallySerializable),
			tbtm.WithThreads(4),
			tbtm.WithMaxRetries(auditBudget),
			tbtm.WithVersions(8),
		}},
	} {
		ok, attempts := run(cfg.opts)
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  audits committed: %d/%d (%.0f%%), mean attempts per audit: %.1f\n\n",
			ok, audits, 100*float64(ok)/audits, float64(attempts)/audits)
	}
	fmt.Println("Both runs preserve causal serializability; the retained versions only")
	fmt.Println("change which consistent snapshot the auditor observes.")
}

func run(opts []tbtm.Option) (committed, attempts int) {
	tm, err := tbtm.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	accts := make([]*tbtm.Var[int64], accounts)
	for i := range accts {
		accts[i] = tbtm.NewVar(tm, int64(initialEach))
	}

	// Tellers churn until the auditor is done. The per-transfer yield
	// makes the single-CPU scheduler interleave transfers with the
	// auditor's scan, as hardware parallelism would (see DESIGN.md §7).
	var churn atomic.Bool
	churn.Store(true)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; churn.Load(); i++ {
				runtime.Gosched()
				from, to := (i+w)%accounts, (i*7+w+1)%accounts
				if from == to {
					continue
				}
				_ = th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					fv, err := accts[from].Read(tx)
					if err != nil {
						return err
					}
					tv, err := accts[to].Read(tx)
					if err != nil {
						return err
					}
					if err := accts[from].Write(tx, fv-1); err != nil {
						return err
					}
					return accts[to].Write(tx, tv+1)
				})
			}
		}(w)
	}

	auditor := tm.NewThread()
	for a := 0; a < audits; a++ {
		var sum int64
		tries := 0
		err := auditor.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
			tries++
			sum = 0
			for i, acct := range accts {
				if i%8 == 0 {
					runtime.Gosched() // let transfers interleave mid-scan
				}
				v, err := acct.Read(tx)
				if err != nil {
					return err
				}
				sum += v
			}
			return nil
		})
		attempts += tries
		if err == nil {
			if sum != accounts*initialEach {
				log.Fatalf("torn audit: sum = %d, want %d", sum, accounts*initialEach)
			}
			committed++
		}
	}
	churn.Store(false)
	wg.Wait()
	return committed, attempts
}
