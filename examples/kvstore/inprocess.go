package main

// The original in-process demo (-inprocess): the same counter/mirror
// workload against the library API directly, with a hand-rolled
// copy-on-write bucket store. Kept as the no-networking baseline the
// wire demo is measured against.

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
)

// entry is an immutable key/value pair node; bucket values are []entry
// slices replaced wholesale on update (copy-on-write).
type entry struct {
	key string
	val int
}

// Store is a transactional hash map.
type Store struct {
	tm      *tbtm.TM
	buckets []*tbtm.Var[[]entry]
}

// NewStore creates a store with the given bucket count.
func NewStore(tm *tbtm.TM, buckets int) *Store {
	s := &Store{tm: tm, buckets: make([]*tbtm.Var[[]entry], buckets)}
	for i := range s.buckets {
		s.buckets[i] = tbtm.NewVar(tm, []entry(nil))
	}
	return s
}

func (s *Store) bucket(key string) *tbtm.Var[[]entry] {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return s.buckets[int(h)%len(s.buckets)]
}

// Put inserts or updates a key in a short transaction.
func (s *Store) Put(th *tbtm.Thread, key string, val int) error {
	b := s.bucket(key)
	return th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
		old, err := b.Read(tx)
		if err != nil {
			return err
		}
		next := make([]entry, 0, len(old)+1)
		replaced := false
		for _, e := range old {
			if e.key == key {
				next = append(next, entry{key: key, val: val})
				replaced = true
			} else {
				next = append(next, e)
			}
		}
		if !replaced {
			next = append(next, entry{key: key, val: val})
		}
		return b.Write(tx, next)
	})
}

// Snapshot scans the whole store in one long read-only transaction,
// returning a consistent point-in-time view.
func (s *Store) Snapshot(th *tbtm.Thread) (map[string]int, error) {
	var snap map[string]int
	err := th.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		snap = make(map[string]int)
		for _, b := range s.buckets {
			es, err := b.Read(tx)
			if err != nil {
				return err
			}
			for _, e := range es {
				snap[e.key] = e.val
			}
		}
		return nil
	})
	return snap, err
}

func runInProcess() {
	tm, err := tbtm.New(tbtm.WithConsistency(tbtm.ZLinearizable))
	if err != nil {
		log.Fatal(err)
	}
	store := NewStore(tm, 64)

	// Seed: counters c0..c15, each starting at 0. Writers increment a
	// counter and its mirror together; every snapshot must see
	// counter == mirror for all pairs.
	seedTh := tm.NewThread()
	for i := 0; i < pairs; i++ {
		if err := store.Put(seedTh, fmt.Sprintf("c%d", i), 0); err != nil {
			log.Fatal(err)
		}
		if err := store.Put(seedTh, fmt.Sprintf("m%d", i), 0); err != nil {
			log.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			i := 0
			for !stop.Load() {
				i++
				k := (w*7 + i) % pairs
				ck, mk := fmt.Sprintf("c%d", k), fmt.Sprintf("m%d", k)
				// Paired increment in ONE transaction across two buckets.
				cb, mb := store.bucket(ck), store.bucket(mk)
				err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					bump := func(b *tbtm.Var[[]entry], key string) error {
						es, err := b.Read(tx)
						if err != nil {
							return err
						}
						next := make([]entry, len(es))
						copy(next, es)
						for j := range next {
							if next[j].key == key {
								next[j].val++
							}
						}
						return b.Write(tx, next)
					}
					if err := bump(cb, ck); err != nil {
						return err
					}
					return bump(mb, mk)
				})
				if err != nil {
					log.Fatalf("paired increment: %v", err)
				}
			}
		}(w)
	}

	// Snapshots: counter/mirror pairs must always match. Space them out
	// so the writers make progress between scans.
	th := tm.NewThread()
	for round := 0; round < 30; round++ {
		time.Sleep(2 * time.Millisecond)
		snap, err := store.Snapshot(th)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < pairs; i++ {
			c, m := snap[fmt.Sprintf("c%d", i)], snap[fmt.Sprintf("m%d", i)]
			if c != m {
				log.Fatalf("snapshot %d torn: c%d=%d m%d=%d", round, i, c, i, m)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	snap, err := store.Snapshot(th)
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total int
	for _, k := range keys {
		if k[0] == 'c' {
			total += snap[k]
		}
	}
	fmt.Printf("store holds %d keys; 30 consistent snapshots taken; %d total increments\n",
		len(snap), total)
	fmt.Printf("stats: %+v\n", tm.Stats())
}
