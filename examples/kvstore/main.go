// KVStore: the repo's key-value workload, served over the wire. By
// default this example starts an in-process tbtmd on a loopback port
// and drives it as a network CLIENT: atomic MULTI/EXEC scripts
// increment counter/mirror pairs, consistent RANGE snapshots check the
// pair invariant while writers run, and a blocking BTAKE parks
// server-side until a remote SET wakes it — the classic workload the
// paper's introduction motivates (long transactions over many objects
// competing with short updates), now with a protocol in between.
//
//	go run ./examples/kvstore                  # in-process server, wire client
//	go run ./examples/kvstore -addr host:port  # drive an external tbtmd
//	go run ./examples/kvstore -inprocess       # PR1-era in-process demo
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"sync"
	"time"

	"tbtm"
	"tbtm/server"
)

const pairs = 16

func main() {
	inprocess := flag.Bool("inprocess", false, "run the original in-process demo (no networking)")
	addr := flag.String("addr", "", "drive an external tbtmd at this address (default: start one in-process)")
	flag.Parse()
	if *inprocess {
		runInProcess()
		return
	}
	if err := runClient(*addr); err != nil {
		log.Fatal(err)
	}
}

func runClient(addr string) error {
	// Start an in-process server unless pointed at an external one. The
	// demo only ever talks to it through the wire protocol.
	if addr == "" {
		srv, err := server.New(server.Config{Consistency: tbtm.ZLinearizable})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Close()
		addr = ln.Addr().String()
		fmt.Printf("kvstore: started in-process tbtmd on %s\n", addr)
	}

	// Seed all counter/mirror pairs in ONE atomic script.
	seed, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer seed.Close()
	var script []server.MultiOp
	for i := 0; i < pairs; i++ {
		script = append(script,
			server.MSet("c"+strconv.Itoa(i), []byte("0")),
			server.MSet("m"+strconv.Itoa(i), []byte("0")))
	}
	if _, committed, err := seed.MultiExec(script); err != nil || !committed {
		return fmt.Errorf("seeding: committed=%v err=%v", committed, err)
	}

	// Writers: each picks a pair and increments counter AND mirror via
	// an optimistic MULTI(CAS, CAS) — the script commits atomically or
	// rolls back entirely, so no snapshot can ever see a torn pair.
	const (
		writers       = 3
		incrPerWriter = 40
	)
	var wg sync.WaitGroup
	werrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				werrs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < incrPerWriter; i++ {
				k := strconv.Itoa((w*7 + i) % pairs)
				for {
					res, committed, err := cl.MultiExec([]server.MultiOp{
						server.MGet("c" + k), server.MGet("m" + k),
					})
					if err != nil || !committed {
						werrs <- fmt.Errorf("read pair: committed=%v err=%v", committed, err)
						return
					}
					cur, _ := strconv.Atoi(string(res[0].Val))
					next := []byte(strconv.Itoa(cur + 1))
					_, committed, err = cl.MultiExec([]server.MultiOp{
						server.MCas("c"+k, res[0].Val, true, next),
						server.MCas("m"+k, res[1].Val, true, next),
					})
					if err != nil {
						werrs <- err
						return
					}
					if committed {
						break // both cells advanced atomically
					}
					// Lost the race: re-read and retry the script.
				}
			}
		}(w)
	}

	// Snapshot reader: a RANGE is one long read-only transaction
	// server-side, so counter == mirror must hold in every reply even
	// while writers commit between pairs.
	snapCl, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer snapCl.Close()
	snapshots := 0
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()
	for done := false; !done; {
		select {
		case <-writersDone:
			done = true
		default:
			time.Sleep(2 * time.Millisecond)
		}
		kvs, err := snapCl.Range("", "", 0)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		snap := make(map[string]string, len(kvs))
		for _, kv := range kvs {
			snap[kv.Key] = string(kv.Val)
		}
		for i := 0; i < pairs; i++ {
			k := strconv.Itoa(i)
			if snap["c"+k] != snap["m"+k] {
				return fmt.Errorf("snapshot %d torn: c%s=%s m%s=%s",
					snapshots, k, snap["c"+k], k, snap["m"+k])
			}
		}
		snapshots++
	}
	select {
	case err := <-werrs:
		return err
	default:
	}

	// Blocking take over the wire: the consumer parks server-side (no
	// engine thread burned) until the producer's SET commits.
	taken := make(chan []byte, 1)
	terr := make(chan error, 1)
	consumer, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer consumer.Close()
	go func() {
		v, err := consumer.BTake("job")
		if err != nil {
			terr <- err
			return
		}
		taken <- v
	}()
	time.Sleep(20 * time.Millisecond) // let the consumer park
	if err := seed.Set("job", []byte("build-the-thing")); err != nil {
		return err
	}
	select {
	case v := <-taken:
		fmt.Printf("kvstore: blocking take woken by remote SET: %q\n", v)
	case err := <-terr:
		return fmt.Errorf("blocking take: %w", err)
	case <-time.After(10 * time.Second):
		return errors.New("blocking take never woke")
	}

	// Tally and report through the wire.
	total := 0
	for i := 0; i < pairs; i++ {
		v, _, err := seed.Get("c" + strconv.Itoa(i))
		if err != nil {
			return err
		}
		n, _ := strconv.Atoi(string(v))
		total += n
	}
	stats, err := seed.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("kvstore: %d consistent snapshots, %d total increments (want %d)\n",
		snapshots, total, writers*incrPerWriter)
	fmt.Printf("kvstore: engine commits=%d aborts=%d parks=%d wakeups=%d; executor acquires=%d waits=%d\n",
		stats.Engine.Commits+stats.Engine.LongCommits, stats.Engine.Aborts,
		stats.Engine.Parks, stats.Engine.Wakeups,
		stats.Metrics.Executor.Acquires, stats.Metrics.Executor.AcquireWaits)
	if total != writers*incrPerWriter {
		return fmt.Errorf("lost increments: %d != %d", total, writers*incrPerWriter)
	}
	return nil
}
