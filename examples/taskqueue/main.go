// Taskqueue: a work-scheduling application composing three transactional
// structures — a pending FIFO queue, an in-flight map, and a completed
// counter — under one TM. Claiming a task moves it from the queue to the
// in-flight map in ONE short transaction; finishing moves it from the
// map to the counter. A supervisor concurrently takes long consistent
// snapshots across all three structures and checks the conservation
// invariant pending + inflight + done == produced, which only holds on a
// consistent cut: this is the composition story STM exists for, and the
// long/short split is the paper's.
//
// The claim path is event-driven: the TM is built WithBlockingRetry and
// an idle worker returns tbtm.Retry from its claim transaction, parking
// until a producer's commit overwrites something in its read footprint
// (the queue head, or the shutdown flag read on the empty path). No
// worker ever spins on an empty queue — compare the park/wakeup counts
// against the zero spin-loop sleeps in the output.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"tbtm"
	"tbtm/structs"
)

const totalTasks = 400

// errShutdown is the non-retryable sentinel a worker's claim transaction
// returns once the queue is empty and the shutdown flag is set.
var errShutdown = errors.New("taskqueue: shutdown")

func main() {
	tm := tbtm.MustNew(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithVersions(64),
		tbtm.WithBlockingRetry(),
	)

	pending := structs.NewQueue[int](tm)
	inflight := structs.NewMap[int, string](tm, 64, structs.IntHash)
	done := tbtm.NewVar(tm, int64(0))
	produced := tbtm.NewVar(tm, int64(0))
	shutdown := tbtm.NewVar(tm, false)

	var wg sync.WaitGroup

	// Producer: enqueue tasks, bumping the produced count atomically with
	// the enqueue; when everything is enqueued, raise the shutdown flag —
	// its commit wakes any worker parked on the empty queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for id := 0; id < totalTasks; id++ {
			if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				if err := pending.Enqueue(tx, id); err != nil {
					return err
				}
				return produced.Modify(tx, func(n int64) int64 { return n + 1 })
			}); err != nil {
				log.Fatalf("produce: %v", err)
			}
		}
		if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
			return shutdown.Write(tx, true)
		}); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
	}()

	// Workers: claim (queue → map) blocking on an empty queue, "work",
	// complete (map → counter). The claim transaction reads the shutdown
	// flag only on the empty path, so the flag joins the parked footprint
	// exactly when it matters.
	var processed atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for {
				var id int
				err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					var e error
					id, e = pending.Dequeue(tx)
					if errors.Is(e, structs.ErrEmpty) {
						halt, e2 := shutdown.Read(tx)
						if e2 != nil {
							return e2
						}
						if halt {
							return errShutdown
						}
						return tbtm.Retry(tx)
					}
					if e != nil {
						return e
					}
					_, e = inflight.Put(tx, id, fmt.Sprintf("worker-%d", w))
					return e
				})
				if errors.Is(err, errShutdown) {
					return
				}
				if err != nil {
					log.Fatalf("claim: %v", err)
				}

				// The "work" itself happens outside any transaction.

				if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					if _, err := inflight.Delete(tx, id); err != nil {
						return err
					}
					return done.Modify(tx, func(n int64) int64 { return n + 1 })
				}); err != nil {
					log.Fatalf("complete: %v", err)
				}
				processed.Add(1)
			}
		}(w)
	}

	// Supervisor: long consistent snapshots across all three structures.
	snapshots := 0
	supervisor := tm.NewThread()
	for processed.Load() < totalTasks {
		var p, f int
		var d, made int64
		if err := supervisor.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
			var err error
			if p, err = pending.Len(tx); err != nil {
				return err
			}
			if f, err = inflight.Len(tx); err != nil {
				return err
			}
			if d, err = done.Read(tx); err != nil {
				return err
			}
			made, err = produced.Read(tx)
			return err
		}); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if int64(p)+int64(f)+d != made {
			log.Fatalf("INCONSISTENT CUT: pending=%d inflight=%d done=%d produced=%d", p, f, d, made)
		}
		snapshots++
	}
	wg.Wait()

	st := tm.Stats()
	fmt.Printf("processed %d tasks with 3 workers; every one of %d supervisor snapshots was consistent\n",
		processed.Load(), snapshots)
	fmt.Printf("stats: %d short commits, %d long commits, %d conflicts, %d zone crossings\n",
		st.Commits, st.LongCommits, st.Conflicts, st.ZoneCrosses)
	fmt.Printf("blocking: %d parks, %d wakeups (%d spurious) — idle workers slept instead of spinning\n",
		st.Parks, st.Wakeups, st.SpuriousWakeups)
}
