// Taskqueue: a work-scheduling application composing three transactional
// structures — a pending FIFO queue, an in-flight map, and a completed
// counter — under one TM. Claiming a task moves it from the queue to the
// in-flight map in ONE short transaction; finishing moves it from the
// map to the counter. A supervisor concurrently takes long consistent
// snapshots across all three structures and checks the conservation
// invariant pending + inflight + done == produced, which only holds on a
// consistent cut: this is the composition story STM exists for, and the
// long/short split is the paper's.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/structs"
)

const totalTasks = 400

func main() {
	tm := tbtm.MustNew(tbtm.WithConsistency(tbtm.ZLinearizable), tbtm.WithVersions(64))

	pending := structs.NewQueue[int](tm)
	inflight := structs.NewMap[int, string](tm, 64, structs.IntHash)
	done := tbtm.NewVar(tm, int64(0))
	produced := tbtm.NewVar(tm, int64(0))

	var wg sync.WaitGroup

	// Producer: enqueue tasks, bumping the produced count atomically with
	// the enqueue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tm.NewThread()
		for id := 0; id < totalTasks; id++ {
			if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
				if err := pending.Enqueue(tx, id); err != nil {
					return err
				}
				return produced.Modify(tx, func(n int64) int64 { return n + 1 })
			}); err != nil {
				log.Fatalf("produce: %v", err)
			}
		}
	}()

	// Workers: claim (queue → map), "work", complete (map → counter).
	var processed atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for {
				var id int
				err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					var err error
					id, err = pending.Dequeue(tx)
					if err != nil {
						return err
					}
					_, err = inflight.Put(tx, id, fmt.Sprintf("worker-%d", w))
					return err
				})
				if errors.Is(err, structs.ErrEmpty) {
					if processed.Load() >= totalTasks {
						return
					}
					time.Sleep(100 * time.Microsecond)
					continue
				}
				if err != nil {
					log.Fatalf("claim: %v", err)
				}

				// The "work" itself happens outside any transaction.

				if err := th.Atomic(tbtm.Short, func(tx tbtm.Tx) error {
					if _, err := inflight.Delete(tx, id); err != nil {
						return err
					}
					return done.Modify(tx, func(n int64) int64 { return n + 1 })
				}); err != nil {
					log.Fatalf("complete: %v", err)
				}
				processed.Add(1)
			}
		}(w)
	}

	// Supervisor: long consistent snapshots across all three structures.
	snapshots := 0
	supervisor := tm.NewThread()
	for processed.Load() < totalTasks {
		var p, f int
		var d, made int64
		if err := supervisor.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
			var err error
			if p, err = pending.Len(tx); err != nil {
				return err
			}
			if f, err = inflight.Len(tx); err != nil {
				return err
			}
			if d, err = done.Read(tx); err != nil {
				return err
			}
			made, err = produced.Read(tx)
			return err
		}); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if int64(p)+int64(f)+d != made {
			log.Fatalf("INCONSISTENT CUT: pending=%d inflight=%d done=%d produced=%d", p, f, d, made)
		}
		snapshots++
	}
	wg.Wait()

	st := tm.Stats()
	fmt.Printf("processed %d tasks with 3 workers; every one of %d supervisor snapshots was consistent\n",
		processed.Load(), snapshots)
	fmt.Printf("stats: %d short commits, %d long commits, %d conflicts, %d zone crossings\n",
		st.Commits, st.LongCommits, st.Conflicts, st.ZoneCrosses)
}
