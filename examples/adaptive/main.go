// Adaptive: demonstrates automatic long/short classification (§5.3's
// "automatic marking based on past behaviors of transactions"). The
// application never declares transaction kinds; the report site is
// promoted to Long after its first execution reveals a large footprint,
// after which it sustains commits under update contention — the Figure 7
// behaviour without annotations.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
)

func main() {
	tm, err := tbtm.New(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithAutoClassify(64), // promote sites averaging >= 64 opens
	)
	if err != nil {
		log.Fatal(err)
	}

	const items = 256
	stock := make([]*tbtm.Var[int64], items)
	for i := range stock {
		stock[i] = tbtm.NewVar(tm, int64(10))
	}
	report := tbtm.NewVar(tm, int64(0))

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Order processors: small transactions, classified short forever.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			i := 0
			for !stop.Load() {
				i++
				src, dst := (w*5+i)%items, (w*11+i*3+1)%items
				if src == dst {
					continue
				}
				err := th.AtomicSite("move-stock", func(tx tbtm.Tx) error {
					s, err := stock[src].Read(tx)
					if err != nil {
						return err
					}
					d, err := stock[dst].Read(tx)
					if err != nil {
						return err
					}
					if err := stock[src].Write(tx, s-1); err != nil {
						return err
					}
					return stock[dst].Write(tx, d+1)
				})
				if err != nil {
					log.Fatalf("move-stock: %v", err)
				}
			}
		}(w)
	}

	// Inventory reporter: scans everything and persists the total. The
	// site starts as Short; its first run observes a 257-object footprint
	// and promotes it to Long.
	th := tm.NewThread()
	reports := 0
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		err := th.AtomicSite("inventory-report", func(tx tbtm.Tx) error {
			var sum int64
			for _, v := range stock {
				x, err := v.Read(tx)
				if err != nil {
					return err
				}
				sum += x
			}
			if sum != items*10 {
				return fmt.Errorf("inconsistent inventory: %d", sum)
			}
			return report.Write(tx, sum)
		})
		if err != nil {
			log.Fatalf("inventory-report: %v", err)
		}
		reports++
	}
	stop.Store(true)
	wg.Wait()

	st := tm.Stats()
	fmt.Printf("inventory reports committed: %d\n", reports)
	fmt.Printf("of those, ran as long transactions: %d (first run executes short, then the site is promoted)\n",
		st.LongCommits)
	fmt.Printf("short commits: %d, zone crossings: %d\n", st.Commits, st.ZoneCrosses)
	if st.LongCommits == 0 {
		log.Fatal("classifier never promoted the report site")
	}
}
