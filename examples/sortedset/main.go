// Sortedset: a concurrent leaderboard on the transactional skip list.
// Writer goroutines record scores (short transactions) while a reporter
// repeatedly takes consistent range snapshots (long transactions) — the
// data-structure version of the paper's bank benchmark, where the long
// scan would starve under pure linearizability but proceeds under
// z-linearizability's zones.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"tbtm"
	"tbtm/structs"
)

func main() {
	tm := tbtm.MustNew(
		tbtm.WithConsistency(tbtm.ZLinearizable),
		tbtm.WithVersions(64),
	)
	board := structs.NewSkipList(tm, func(a, b int) bool { return a < b })

	const (
		writers  = 4
		duration = 300 * time.Millisecond
	)

	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		written atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := tm.NewThread()
			for i := 0; !stop.Load(); i++ {
				score := (w*1_000_000 + i*37) % 100_000
				if _, err := board.InsertAtomic(th, score); err != nil {
					log.Fatalf("insert: %v", err)
				}
				written.Add(1)
			}
		}(w)
	}

	reporter := tm.NewThread()
	deadline := time.Now().Add(duration)
	scans := 0
	var lastTop []int
	for time.Now().Before(deadline) {
		// A consistent snapshot of the top band — a long transaction that
		// spans a large slice of the structure.
		top, err := board.RangeAtomic(reporter, 90_000, 100_000)
		if err != nil {
			log.Fatalf("range scan: %v", err)
		}
		scans++
		lastTop = top
	}
	stop.Store(true)
	wg.Wait()

	var total int
	if err := reporter.AtomicReadOnly(tbtm.Long, func(tx tbtm.Tx) error {
		var err error
		total, err = board.Len(tx)
		return err
	}); err != nil {
		log.Fatalf("len: %v", err)
	}

	st := tm.Stats()
	fmt.Printf("leaderboard: %d distinct scores after %d inserts by %d writers\n",
		total, written.Load(), writers)
	fmt.Printf("reporter completed %d consistent range scans of the top band", scans)
	if n := len(lastTop); n > 0 {
		fmt.Printf(" (last saw %d scores, %d..%d)", n, lastTop[0], lastTop[n-1])
	}
	fmt.Println()
	fmt.Printf("stats: %d short commits, %d long commits, %d zone crossings, %d conflicts\n",
		st.Commits, st.LongCommits, st.ZoneCrosses, st.Conflicts)
}
