// Writeskew: demonstrates the anomaly that separates the consistency
// spectrum of the paper. Two doctors are on call; hospital policy says
// at least one must stay on call. Each doctor's transaction reads both
// rosters, sees two on call, and books itself off. Under a serializable
// (or linearizable, or z-linearizable) STM one transaction aborts and
// the policy holds; under snapshot isolation — and under causal
// serializability, which paper §4.1 calls "comparable to snapshot
// isolation" — both commit and the ward is left unattended.
//
// The example runs the identical interleaving against every consistency
// level of the library and prints which levels preserve the invariant.
package main

import (
	"fmt"

	"tbtm"
)

// skew drives the two bookings through an explicit, deterministic
// overlap: both transactions read both rosters before either writes.
func skew(level tbtm.Consistency) (bothCommitted bool, onCall int) {
	tm := tbtm.MustNew(
		tbtm.WithConsistency(level),
		tbtm.WithContention(tbtm.ContentionSuicide),
	)
	alice := tbtm.NewVar(tm, true) // true = on call
	bob := tbtm.NewVar(tm, true)

	t1 := tm.NewThread().Begin(tbtm.Short)
	t2 := tm.NewThread().Begin(tbtm.Short)

	bothOnCall := func(tx tbtm.Tx) bool {
		a, errA := alice.Read(tx)
		b, errB := bob.Read(tx)
		return errA == nil && errB == nil && a && b
	}

	ok1 := bothOnCall(t1)
	ok2 := bothOnCall(t2)

	var err1, err2 error
	if ok1 {
		if err1 = alice.Write(t1, false); err1 == nil { // Alice books off
			err1 = t1.Commit()
		} else {
			t1.Abort()
		}
	} else {
		t1.Abort()
		err1 = fmt.Errorf("t1 saw a conflict while reading")
	}
	if ok2 {
		if err2 = bob.Write(t2, false); err2 == nil { // Bob books off
			err2 = t2.Commit()
		} else {
			t2.Abort()
		}
	} else {
		t2.Abort()
		err2 = fmt.Errorf("t2 saw a conflict while reading")
	}

	// Count who is still on call.
	th := tm.NewThread()
	_ = th.AtomicReadOnly(tbtm.Short, func(tx tbtm.Tx) error {
		a, err := alice.Read(tx)
		if err != nil {
			return err
		}
		b, err := bob.Read(tx)
		if err != nil {
			return err
		}
		onCall = 0
		if a {
			onCall++
		}
		if b {
			onCall++
		}
		return nil
	})
	return err1 == nil && err2 == nil, onCall
}

func main() {
	fmt.Println("Write skew: both doctors book off after seeing two on call.")
	fmt.Println("Invariant: at least one doctor stays on call.")
	fmt.Println()
	fmt.Printf("%-24s %-14s %-10s %s\n", "consistency level", "both commit?", "on call", "invariant")
	for _, level := range []tbtm.Consistency{
		tbtm.Linearizable,
		tbtm.SingleVersion,
		tbtm.Serializable,
		tbtm.ZLinearizable,
		tbtm.CausallySerializable,
		tbtm.SnapshotIsolation,
	} {
		both, onCall := skew(level)
		verdict := "preserved"
		if onCall == 0 {
			verdict = "VIOLATED (write skew)"
		}
		fmt.Printf("%-24s %-14v %-10d %s\n", level, both, onCall, verdict)
	}
	fmt.Println()
	fmt.Println("Snapshot isolation and causal serializability admit the skew;")
	fmt.Println("the serializable family rejects it — the price and the payoff")
	fmt.Println("of the stronger criteria the paper builds toward.")
}
