package tbtm

import (
	"errors"
	"testing"
)

func TestAtomicSiteWithoutClassifier(t *testing.T) {
	tm := MustNew()
	v := NewVar(tm, 1)
	th := tm.NewThread()
	if err := th.AtomicSite("anything", func(tx Tx) error {
		return v.Write(tx, 2)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicSitePromotesScans(t *testing.T) {
	tm := MustNew(WithConsistency(ZLinearizable), WithAutoClassify(32))
	vars := make([]*Var[int64], 64)
	for i := range vars {
		vars[i] = NewVar(tm, int64(1))
	}
	th := tm.NewThread()
	scan := func(tx Tx) error {
		var sum int64
		for _, v := range vars {
			x, err := v.Read(tx)
			if err != nil {
				return err
			}
			sum += x
		}
		if sum != 64 {
			t.Errorf("sum = %d", sum)
		}
		return nil
	}
	// First run executes as Short (unknown site) and is observed with a
	// 64-object footprint, promoting the site.
	if err := th.AtomicSite("scan", scan); err != nil {
		t.Fatal(err)
	}
	before := tm.Stats().LongCommits
	if err := th.AtomicSite("scan", scan); err != nil {
		t.Fatal(err)
	}
	if got := tm.Stats().LongCommits; got != before+1 {
		t.Fatalf("second scan ran as kind short (long commits %d -> %d)", before, got)
	}
	// A small site stays short.
	if err := th.AtomicSite("touch", func(tx Tx) error {
		return vars[0].Write(tx, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := tm.Stats().LongCommits; got != before+1 {
		t.Fatal("small site ran as long")
	}
}

func TestAtomicSitePassesThroughUserErrors(t *testing.T) {
	tm := MustNew(WithAutoClassify(0))
	th := tm.NewThread()
	sentinel := errors.New("boom")
	if err := th.AtomicSite("s", func(Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestAtomicSiteMaxRetries(t *testing.T) {
	tm := MustNew(WithAutoClassify(0), WithMaxRetries(2))
	th := tm.NewThread()
	calls := 0
	err := th.AtomicSite("s", func(Tx) error {
		calls++
		return ErrConflict
	})
	if !errors.Is(err, ErrRetriesExhausted) || calls != 2 {
		t.Fatalf("err = %v, calls = %d", err, calls)
	}
}
